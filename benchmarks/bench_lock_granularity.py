"""Lock granularity: per-table write locks + RCU snapshots vs one big lock.

Two measurements against the same engine code, flipping only
``EngineConfig.lock_granularity``:

Part A — DML scaling on disjoint tables. Four client sessions each run a
stream of UPDATEs against their *own* table (CAR / OWNER / DEMOGRAPHICS /
ACCIDENTS). Under the database-level lock every write serializes; under
per-table locks the four streams only serialize within a table. Each
write statement pays ``commit_latency`` inside its lock span (the
durable-commit model: a log force before the locks release), so the
fine-grained engine overlaps the commit waits the coarse engine must
queue. The aggregate-throughput bar is >= 2x at 4 workers; the same
streams run on one worker must regress < 5% (the hierarchy's extra
acquisitions are noise next to real work).

Part B — optimizer read path under a concurrent writer. One client loops
EXPLAIN (the full compile pipeline: JITS sensitivity analysis, sampling,
selectivity estimation over the RCU statistics snapshots) against CAR
and OWNER while a writer hammers ACCIDENTS. With the database lock every
EXPLAIN queues behind the writer's commit spans; with per-table locks
the reader's tables are untouched and its statistics reads are lock-free
snapshot loads. Bar: >= 1.2x mean per-EXPLAIN latency reduction.

Both parts assert result/state equivalence: the four DML streams leave
byte-identical aggregates and UDI counters under every (granularity,
workers) combination.

Run under pytest (the usual path) or standalone:

    python bench_lock_granularity.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Sequence, Tuple

from repro import Engine, EngineConfig
from repro.workload import build_car_database, format_table

TABLES = ["car", "owner", "demographics", "accidents"]
DML_WORKERS = 4
COMMIT_LATENCY = 0.008  # seconds per write statement, inside the lock span
DML_SPEEDUP_BAR = 2.0  # fine vs coarse aggregate throughput, 4 workers
SEQ_REGRESSION_BAR = 1.05  # fine vs coarse, 1 worker
READ_SPEEDUP_BAR = 1.2  # coarse vs fine mean EXPLAIN latency

DML_TEMPLATES = {
    "car": "UPDATE car SET price = price + 1.0 WHERE id < 40",
    "owner": "UPDATE owner SET age = age + 1 WHERE id < 40",
    "demographics": "UPDATE demographics SET salary = salary + 10.0 "
    "WHERE id < 40",
    "accidents": "UPDATE accidents SET damage = damage + 1.0 WHERE id < 40",
}

STATE_CHECKS = [
    "SELECT COUNT(*), SUM(price) FROM car",
    "SELECT COUNT(*), SUM(age) FROM owner",
    "SELECT COUNT(*), SUM(salary) FROM demographics",
    "SELECT COUNT(*), SUM(damage) FROM accidents",
]

EXPLAIN_QUERY = (
    "SELECT o.name, c.price FROM car c, owner o "
    "WHERE c.ownerid = o.id AND c.make = 'Toyota' AND c.price > 20000"
)
WRITER_STATEMENT = DML_TEMPLATES["accidents"]


def build_engine(
    granularity: str,
    scale: float,
    seed: int,
    commit_latency: float,
    with_jits: bool = False,
) -> Engine:
    db, _ = build_car_database(scale=scale, seed=seed)
    config = (
        EngineConfig.with_jits(s_max=0.5, migration_interval=0)
        if with_jits
        else EngineConfig.traditional()
    )
    config.lock_granularity = granularity
    config.commit_latency = commit_latency
    return Engine(db, config)


# ----------------------------------------------------------------------
# Part A: DML throughput on disjoint tables
# ----------------------------------------------------------------------
def dml_streams(n_per_table: int) -> List[List[str]]:
    return [[DML_TEMPLATES[t]] * n_per_table for t in TABLES]


def run_dml(
    granularity: str,
    workers: int,
    scale: float,
    seed: int,
    n_per_table: int,
    commit_latency: float,
) -> Dict:
    engine = build_engine(granularity, scale, seed, commit_latency)
    streams = dml_streams(n_per_table)

    def client(stream: Sequence[str]) -> List[float]:
        session = engine.session()
        stamps = []
        for sql in stream:
            started = time.perf_counter()
            session.execute(sql)
            stamps.append(time.perf_counter() - started)
        return stamps

    started = time.perf_counter()
    if workers == 1:
        batches = [client(stream) for stream in streams]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            batches = list(pool.map(client, streams))
    elapsed = time.perf_counter() - started

    latencies = sorted(s for batch in batches for s in batch)
    n = len(latencies)
    state = tuple(engine.execute(sql).rows[0] for sql in STATE_CHECKS)
    udi = tuple(engine.database.table(t).udi_total for t in TABLES)
    return {
        "elapsed": elapsed,
        "ops_per_sec": n / elapsed,
        "p50_ms": latencies[n // 2] * 1000,
        "p95_ms": latencies[min(n - 1, int(0.95 * n))] * 1000,
        "state": state,
        "udi": udi,
    }


# ----------------------------------------------------------------------
# Part B: EXPLAIN latency under a concurrent disjoint-table writer
# ----------------------------------------------------------------------
def run_read_path(
    granularity: str,
    scale: float,
    seed: int,
    n_explains: int,
    commit_latency: float,
) -> Dict:
    engine = build_engine(
        granularity, scale, seed, commit_latency, with_jits=True
    )
    stop = threading.Event()
    writes = {"n": 0}

    def writer() -> None:
        session = engine.session()
        while not stop.is_set():
            session.execute(WRITER_STATEMENT)
            writes["n"] += 1
            # Tiny inter-commit gap: the RWLock is writer-preferring, so a
            # zero-gap writer loop re-acquiring the database lock can
            # starve the coarse-mode reader indefinitely. Real clients
            # always have think time between statements.
            time.sleep(0.002)

    thread = threading.Thread(target=writer)
    thread.start()
    reader = engine.session()
    latencies = []
    try:
        reader.explain(EXPLAIN_QUERY)  # warm the JITS caches once
        for _ in range(n_explains):
            started = time.perf_counter()
            reader.explain(EXPLAIN_QUERY)
            latencies.append(time.perf_counter() - started)
            # Client think time, so the EXPLAINs sample many points of the
            # writer's commit cycle instead of bursting through one gap.
            time.sleep(0.003)
    finally:
        stop.set()
        thread.join(timeout=60)
    latencies.sort()
    n = len(latencies)
    return {
        "mean_ms": sum(latencies) / n * 1000,
        "p50_ms": latencies[n // 2] * 1000,
        "p95_ms": latencies[min(n - 1, int(0.95 * n))] * 1000,
        "writer_statements": writes["n"],
    }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_bench(
    scale: float,
    seed: int,
    n_per_table: int,
    n_explains: int,
    commit_latency: float = COMMIT_LATENCY,
) -> Dict:
    dml: Dict[Tuple[str, int], Dict] = {}
    for granularity in ("table", "database"):
        for workers in (DML_WORKERS, 1):
            dml[(granularity, workers)] = run_dml(
                granularity, workers, scale, seed, n_per_table, commit_latency
            )

    # State equivalence: every combination must leave identical data.
    reference = dml[("database", 1)]
    for key, run in dml.items():
        assert run["state"] == reference["state"], (
            f"final table state diverged for {key}"
        )
        assert run["udi"] == reference["udi"], (
            f"UDI accounting diverged for {key}"
        )

    read = {
        granularity: run_read_path(
            granularity, scale, seed, n_explains, commit_latency
        )
        for granularity in ("table", "database")
    }

    dml_speedup = (
        dml[("table", DML_WORKERS)]["ops_per_sec"]
        / dml[("database", DML_WORKERS)]["ops_per_sec"]
    )
    seq_ratio = (
        dml[("table", 1)]["elapsed"] / dml[("database", 1)]["elapsed"]
    )
    read_speedup = read["database"]["mean_ms"] / read["table"]["mean_ms"]

    rows = []
    for (granularity, workers), run in sorted(dml.items()):
        rows.append(
            [
                granularity,
                str(workers),
                f"{run['elapsed']:.3f}",
                f"{run['ops_per_sec']:.1f}",
                f"{run['p50_ms']:.1f}",
                f"{run['p95_ms']:.1f}",
            ]
        )
    dml_table = format_table(
        ["locks", "workers", "elapsed_s", "stmts/s", "p50_ms", "p95_ms"],
        rows,
    )
    read_table = format_table(
        ["locks", "mean_ms", "p50_ms", "p95_ms", "writer stmts"],
        [
            [
                granularity,
                f"{r['mean_ms']:.2f}",
                f"{r['p50_ms']:.2f}",
                f"{r['p95_ms']:.2f}",
                str(r["writer_statements"]),
            ]
            for granularity, r in read.items()
        ],
    )
    table = (
        "Part A - 4 disjoint-table DML streams "
        f"(commit latency {commit_latency * 1000:.0f} ms/write):\n"
        + dml_table
        + f"\n4-worker aggregate speedup (table vs database locks): "
        f"{dml_speedup:.2f}x (bar {DML_SPEEDUP_BAR}x)"
        + f"\nsequential 1-worker ratio (table/database elapsed): "
        f"{seq_ratio:.3f} (bar < {SEQ_REGRESSION_BAR})"
        + "\n\nPart B - EXPLAIN latency under a concurrent "
        "disjoint-table writer:\n"
        + read_table
        + f"\nmean EXPLAIN speedup (database/table): {read_speedup:.2f}x "
        f"(bar {READ_SPEEDUP_BAR}x)"
    )
    return {
        "dml": dml,
        "read": read,
        "dml_speedup": dml_speedup,
        "seq_ratio": seq_ratio,
        "read_speedup": read_speedup,
        "table": table,
    }


def check_bars(
    bench: Dict,
    dml_bar: float = DML_SPEEDUP_BAR,
    read_bar: float = READ_SPEEDUP_BAR,
) -> List[str]:
    failures = []
    if bench["dml_speedup"] < dml_bar:
        failures.append(
            f"4-worker DML speedup {bench['dml_speedup']:.2f}x < {dml_bar}x"
        )
    if bench["seq_ratio"] > SEQ_REGRESSION_BAR:
        failures.append(
            f"sequential regression {bench['seq_ratio']:.3f} > "
            f"{SEQ_REGRESSION_BAR}"
        )
    if bench["read_speedup"] < read_bar:
        failures.append(
            f"EXPLAIN-under-writer speedup {bench['read_speedup']:.2f}x "
            f"< {read_bar}x"
        )
    return failures


def json_metrics(bench: Dict) -> Dict:
    return {
        "dml": {
            f"{granularity}_{workers}w": {
                "ops_per_sec": run["ops_per_sec"],
                "p50_ms": run["p50_ms"],
                "p95_ms": run["p95_ms"],
            }
            for (granularity, workers), run in bench["dml"].items()
        },
        "explain_under_writer": {
            granularity: {
                "mean_ms": r["mean_ms"],
                "p50_ms": r["p50_ms"],
                "p95_ms": r["p95_ms"],
            }
            for granularity, r in bench["read"].items()
        },
        "dml_speedup_4_workers": bench["dml_speedup"],
        "sequential_ratio": bench["seq_ratio"],
        "read_path_speedup": bench["read_speedup"],
    }


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_lock_granularity():
    from conftest import DATA_SEED, SCALE, emit

    bench = run_bench(
        min(SCALE, 0.02), DATA_SEED, n_per_table=30, n_explains=40
    )
    emit(
        "bench_lock_granularity",
        bench["table"],
        metrics=json_metrics(bench),
        config={
            "commit_latency": COMMIT_LATENCY,
            "workers": DML_WORKERS,
            "tables": TABLES,
        },
    )
    failures = check_bars(bench)
    assert not failures, "\n".join(failures) + "\n" + bench["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / short streams: verify state-equivalence and "
        "that both speedups materialize, with relaxed bars",
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--per-table", type=int, default=30)
    parser.add_argument("--explains", type=int, default=40)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.005 if args.smoke else args.scale
    n_per_table = 12 if args.smoke else args.per_table
    n_explains = 15 if args.smoke else args.explains
    bench = run_bench(scale, args.seed, n_per_table, n_explains)
    print(bench["table"])
    failures = check_bars(
        bench,
        dml_bar=1.5 if args.smoke else DML_SPEEDUP_BAR,
        read_bar=1.1 if args.smoke else READ_SPEEDUP_BAR,
    )
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: DML speedup {bench['dml_speedup']:.2f}x, read-path speedup "
        f"{bench['read_speedup']:.2f}x, sequential ratio "
        f"{bench['seq_ratio']:.3f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
