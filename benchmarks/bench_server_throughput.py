"""Network server throughput and fairness.

Part 1 — throughput: queries/sec over loopback at 1/4/8 concurrent
clients against one server, next to an in-process baseline (one session
per client thread) at the same concurrency. Every client statement pays
a calibrated think/latency delay (3x the measured engine work, as in
``bench_concurrent_throughput``): a serving workload's win is overlapping
those delays, so throughput should climb with the client count until the
serialized engine work saturates. The net/in-proc column isolates the
cost of the wire (framing + JSON + loopback round-trips). Every SELECT's
rows are checked against the sequential reference executor — the network
layer must never change answers.

Part 2 — fairness under flood: three well-behaved clients run a
query/think loop while a fourth pipelines requests far past its
per-client in-flight cap. The flooder must be answered with retryable
``BUSY`` frames (bounded queueing), and the well-behaved clients' p95
latency must stay within 2x of their flood-free run (small absolute
floor added for timer noise at sub-millisecond scales).

Run under pytest or standalone:

    python bench_server_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Dict, List, Sequence

from repro import Engine, EngineConfig
from repro.executor import run_reference
from repro.server import ReproServer, connect
from repro.sql import build_query_graph, parse_select
from repro.workload import build_car_database, format_table

CLIENT_COUNTS = [1, 4, 8]
SCALING_BAR = 2.0  # network qps at 4 clients vs 1 client
P95_RATIO_BAR = 2.0
P95_NOISE_FLOOR = 0.050  # seconds; absolute slack on the 2x bar

TEMPLATES = [
    "SELECT COUNT(*) FROM car WHERE make = 'Toyota' AND model = 'Camry'",
    "SELECT id, price FROM car WHERE price < 20000 AND year > 1999",
    "SELECT COUNT(*) FROM demographics WHERE city = 'Ottawa' AND salary > 5000",
    "SELECT COUNT(*) FROM accidents WHERE damage > 3000",
    "SELECT make, COUNT(*) FROM car WHERE year >= 1998 GROUP BY make",
    "SELECT AVG(price) FROM car WHERE make = 'Ford'",
]


def build_engine(scale: float, seed: int) -> Engine:
    db, _ = build_car_database(scale=scale, seed=seed)
    return Engine(db, EngineConfig.fastpath(migration_interval=20))


def reference_rows(engine: Engine, statements: Sequence[str]) -> List[List]:
    cache: Dict[str, List] = {}
    out = []
    for sql in statements:
        if sql not in cache:
            block = build_query_graph(parse_select(sql), engine.database)
            cache[sql] = sorted(run_reference(block, engine.database))
        out.append(cache[sql])
    return out


# ----------------------------------------------------------------------
# Part 1: throughput vs. the in-process baseline
# ----------------------------------------------------------------------
def calibrate_think(engine: Engine) -> float:
    """Per-statement client think/latency: 3x the measured engine work."""
    started = time.perf_counter()
    for sql in TEMPLATES * 2:
        engine.execute(sql)
    per_statement = (time.perf_counter() - started) / (2 * len(TEMPLATES))
    return min(max(3.0 * per_statement, 0.004), 0.080)


def serve_over_socket(
    port: int, statements: Sequence[str], n_clients: int, think: float
) -> tuple:
    """Round-robin the statements over ``n_clients`` connections."""
    chunks = [list(enumerate(statements))[i::n_clients]
              for i in range(n_clients)]
    rows: List = [None] * len(statements)
    errors: List = []

    def client_thread(chunk) -> None:
        try:
            with connect(port=port) as client:
                for index, sql in chunk:
                    result = client.execute(sql, busy_retries=20)
                    rows[index] = sorted(result.rows)
                    time.sleep(think)
        except Exception as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=client_thread, args=(c,)) for c in chunks
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    assert not errors, errors
    return rows, elapsed


def run_inprocess(
    engine: Engine, statements: Sequence[str], n_clients: int, think: float
) -> float:
    """The same client pattern without the wire: threads on sessions."""
    chunks = [list(statements)[i::n_clients] for i in range(n_clients)]

    def client_thread(chunk) -> None:
        session = engine.session()
        for sql in chunk:
            session.execute(sql)
            time.sleep(think)

    threads = [
        threading.Thread(target=client_thread, args=(c,)) for c in chunks
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - started


def run_throughput(scale: float, n_statements: int, seed: int) -> Dict:
    statements = [TEMPLATES[i % len(TEMPLATES)] for i in range(n_statements)]
    think = calibrate_think(build_engine(scale, seed))
    table_rows = []
    net_qps: Dict[int, float] = {}
    for n_clients in CLIENT_COUNTS:
        engine = build_engine(scale, seed)
        want = reference_rows(engine, statements)
        inproc_elapsed = run_inprocess(engine, statements, n_clients, think)

        # Fresh engine so the plan/sample caches warm identically.
        engine = build_engine(scale, seed)
        server = ReproServer(
            engine,
            port=0,
            max_inflight=max(8, n_clients),
            per_client_inflight=4,
        ).start_in_thread()
        try:
            got, net_elapsed = serve_over_socket(
                server.port, statements, n_clients, think
            )
        finally:
            server.stop_from_thread()
        mismatches = sum(1 for g, w in zip(got, want) if g != w)
        assert mismatches == 0, f"{mismatches} wrong results over the wire"

        qps = n_statements / net_elapsed
        net_qps[n_clients] = qps
        table_rows.append(
            [
                str(n_clients),
                f"{qps:.1f}",
                f"{n_statements / inproc_elapsed:.1f}",
                f"{qps / (n_statements / inproc_elapsed):.2f}x",
                f"{qps / net_qps[CLIENT_COUNTS[0]]:.2f}x",
                str(mismatches),
            ]
        )
    table = format_table(
        [
            "clients",
            "net q/s",
            "in-proc q/s",
            "net/in-proc",
            "net scaling",
            "wrong",
        ],
        table_rows,
    )
    table += (
        f"\nclient think/latency = {think * 1000:.2f} ms/statement "
        f"(3x measured engine work); {n_statements} statements"
    )
    return {"qps": net_qps, "table": table}


# ----------------------------------------------------------------------
# Part 2: fairness under a flooding client
# ----------------------------------------------------------------------
def _normal_client(
    port: int,
    n_requests: int,
    think: float,
    latencies: List[float],
    errors: List,
) -> None:
    try:
        with connect(port=port) as client:
            for i in range(n_requests):
                sql = TEMPLATES[i % len(TEMPLATES)]
                started = time.perf_counter()
                client.execute(sql, busy_retries=20)
                latencies.append(time.perf_counter() - started)
                time.sleep(think)
    except Exception as exc:
        errors.append(exc)


def _flooder(port: int, stop: threading.Event, counters: Dict) -> None:
    """Pipeline batches far past the per-client cap, counting BUSY."""
    with connect(port=port) as client:
        while not stop.is_set():
            ids = []
            for _ in range(8):
                rid = client.next_id()
                ids.append(rid)
                client.send_raw(
                    {"type": "query", "id": rid, "sql": TEMPLATES[3]}
                )
            for _ in ids:
                frame = client.recv_raw()
                if frame["type"] == "busy":
                    counters["busy"] += 1
                else:
                    counters["served"] += 1


def p95(samples: List[float]) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]


def run_fairness(scale: float, n_requests: int, seed: int) -> Dict:
    def measure(with_flood: bool) -> tuple:
        engine = build_engine(scale, seed)
        server = ReproServer(
            engine, port=0, max_inflight=4, per_client_inflight=2
        ).start_in_thread()
        latencies: List[float] = []
        errors: List = []
        counters = {"busy": 0, "served": 0}
        stop = threading.Event()
        flood_thread = None
        try:
            if with_flood:
                flood_thread = threading.Thread(
                    target=_flooder, args=(server.port, stop, counters)
                )
                flood_thread.start()
                time.sleep(0.1)  # let the flood reach steady state
            threads = [
                threading.Thread(
                    target=_normal_client,
                    args=(server.port, n_requests, 0.005, latencies, errors),
                )
                for _ in range(3)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stop.set()
            if flood_thread is not None:
                flood_thread.join(timeout=30)
        finally:
            stop.set()
            server.stop_from_thread()
        assert not errors, errors
        return latencies, counters

    solo_latencies, _ = measure(with_flood=False)
    flood_latencies, counters = measure(with_flood=True)
    solo = p95(solo_latencies)
    flooded = p95(flood_latencies)
    bar = max(P95_RATIO_BAR * solo, solo + P95_NOISE_FLOOR)
    table = format_table(
        ["metric", "value"],
        [
            ["normal-client p95 solo", f"{solo * 1000:.2f} ms"],
            ["normal-client p95 under flood", f"{flooded * 1000:.2f} ms"],
            ["p95 ratio", f"{flooded / max(solo, 1e-9):.2f}x (bar 2x)"],
            ["flooder BUSY frames", str(counters["busy"])],
            ["flooder served", str(counters["served"])],
        ],
    )
    return {
        "solo_p95": solo,
        "flood_p95": flooded,
        "bar": bar,
        "busy": counters["busy"],
        "table": table,
    }


def check_fairness(fairness: Dict) -> List[str]:
    failures = []
    if fairness["busy"] < 1:
        failures.append("flooding client never saw a BUSY frame")
    if fairness["flood_p95"] > fairness["bar"]:
        failures.append(
            f"normal-client p95 {fairness['flood_p95'] * 1000:.2f} ms "
            f"exceeds the bar {fairness['bar'] * 1000:.2f} ms"
        )
    return failures


# ----------------------------------------------------------------------
# pytest entry point
# ----------------------------------------------------------------------
def test_server_throughput_and_fairness():
    from conftest import DATA_SEED, SCALE, emit

    # Clients, event loop and executor share one process (and one GIL)
    # here, so wire serialization cost grows with result width and caps
    # apparent network scaling at large scales. Cap the data scale: the
    # benchmark measures front-end concurrency, not JSON bandwidth.
    scale = min(SCALE, 0.01)
    bench = run_throughput(scale, 120, DATA_SEED)
    fairness = run_fairness(scale, 25, DATA_SEED)
    emit(
        "bench_server_throughput",
        f"(run at capped scale={scale}: clients/server share one "
        "process, so wire cost would dominate at larger scales)\n"
        + bench["table"] + "\n\nfairness under a flooding client:\n"
        + fairness["table"],
        metrics={
            "ops_per_sec": {str(c): q for c, q in bench["qps"].items()},
            "scaling_4_clients": bench["qps"][4] / bench["qps"][1],
            "fairness": {
                "solo_p95_ms": fairness["solo_p95"] * 1000,
                "flood_p95_ms": fairness["flood_p95"] * 1000,
                "busy_frames": fairness["busy"],
            },
        },
        config={"capped_scale": scale, "client_counts": CLIENT_COUNTS},
    )
    scaling = bench["qps"][4] / bench["qps"][1]
    assert scaling >= SCALING_BAR, (
        f"4-client network scaling {scaling:.2f}x below the "
        f"{SCALING_BAR}x bar\n" + bench["table"]
    )
    failures = check_fairness(fairness)
    assert not failures, "\n".join(failures) + "\n" + fairness["table"]


# ----------------------------------------------------------------------
# standalone entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny scale / short streams for CI",
    )
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--statements", type=int, default=240)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    scale = 0.005 if args.smoke else args.scale
    n_statements = 60 if args.smoke else args.statements
    bench = run_throughput(scale, n_statements, args.seed)
    print(bench["table"])
    fairness = run_fairness(scale, 15 if args.smoke else 40, args.seed)
    print("\nfairness under a flooding client:")
    print(fairness["table"])
    scaling = bench["qps"][4] / bench["qps"][1]
    bar = 1.5 if args.smoke else SCALING_BAR
    if scaling < bar:
        print(f"FAIL: 4-client network scaling {scaling:.2f}x < {bar}x")
        return 1
    failures = check_fairness(fairness)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(
        f"OK: 4-client network scaling {scaling:.2f}x (bar {bar}x); "
        "per-client fairness holds"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
