"""Figure 4: per-query scatter, JITS (no prior stats) vs WorkloadStats.

The paper's reading: early queries suffer JITS collection overhead while
the pre-collected workload statistics are still fresh; as updates
accumulate, the workload statistics go stale and JITS pulls ahead.

We report the improvement/degradation split (the scatter's two regions)
for the first and last thirds of the workload, on wall-clock and on the
deterministic modeled plan cost.
"""

from conftest import emit

from repro.workload import ScatterSplit, Setting, format_table


def window_split(candidate, baseline, lo, hi):
    return ScatterSplit.of(candidate[lo:hi], baseline[lo:hi])


def test_fig4_jits_vs_workload_stats(benchmark, setting_reports):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    jits = setting_reports[Setting.JITS]
    workload = setting_reports[Setting.WORKLOAD]

    j_wall = [r.total_time for r in jits.select_records()]
    w_wall = [r.total_time for r in workload.select_records()]
    j_cost = jits.select_modeled_costs()
    w_cost = workload.select_modeled_costs()
    n = len(j_wall)
    third = n // 3

    rows = []
    windows = {
        "early (first 1/3)": (0, third),
        "late (last 1/3)": (n - third, n),
        "all": (0, n),
    }
    splits = {}
    for label, (lo, hi) in windows.items():
        wall = window_split(j_wall, w_wall, lo, hi)
        cost = window_split(j_cost, w_cost, lo, hi)
        splits[label] = cost
        rows.append(
            [
                label,
                wall.improved,
                wall.degraded,
                round(wall.total_candidate / max(wall.total_baseline, 1e-9), 3),
                cost.improved,
                cost.degraded,
                round(cost.total_candidate / max(cost.total_baseline, 1e-9), 3),
            ]
        )
    emit(
        "fig4_vs_workload_stats",
        format_table(
            ["window", "wall imp", "wall deg", "wall ratio",
             "cost imp", "cost deg", "cost ratio"],
            rows,
        ),
        metrics={
            label: {
                "improved": split.improved,
                "degraded": split.degraded,
                "cost_ratio": split.total_candidate
                / max(split.total_baseline, 1e-9),
            }
            for label, split in splits.items()
        },
    )

    early = splits["early (first 1/3)"]
    late = splits["late (last 1/3)"]
    early_ratio = early.total_candidate / max(early.total_baseline, 1e-9)
    late_ratio = late.total_candidate / max(late.total_baseline, 1e-9)
    # Staleness trend: JITS gains ground as the data drifts away from the
    # pre-collected workload statistics.
    assert late_ratio <= early_ratio * 1.05
    # Overall the two settings are in the same league (the paper's scatter
    # hugs the diagonal): within 2x either way on total plan cost.
    overall = splits["all"]
    ratio = overall.total_candidate / max(overall.total_baseline, 1e-9)
    assert 0.5 < ratio < 2.0
