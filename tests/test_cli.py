"""CLI smoke tests (in-process, no subprocess)."""

import io

import pytest

from repro.cli import (
    build_parser,
    build_serve_parser,
    connect_main,
    format_error_caret,
    format_rows,
    main,
    make_engine,
    network_repl,
    repl,
    run_statement,
)


def test_one_shot_execute(capsys):
    code = main(
        ["--scale", "0.0004", "-e", "SELECT COUNT(*) FROM owner", "--no-jits"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 row(s)" in out
    assert "col0" in out


def test_one_shot_explain(capsys):
    code = main(
        [
            "--scale", "0.0004", "--explain",
            "-e", "SELECT o.name FROM car c, owner o WHERE c.ownerid = o.id",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Join" in out or "Scan" in out


def test_one_shot_dml_and_error(capsys):
    code = main(
        [
            "--scale", "0.0004", "--no-jits",
            "-e", "DELETE FROM accidents WHERE id < 5",
            "-e", "SELECT bogus FROM owner",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "delete:" in out
    assert "error:" in out


def test_jits_note_printed(capsys):
    code = main(
        [
            "--scale", "0.0004", "--smax", "0.0",
            "-e", "SELECT id FROM car WHERE make = 'Toyota'",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[jits] sampled car" in out


def test_format_rows_truncates():
    text = format_rows(["a"], [(i,) for i in range(30)], limit=5)
    assert "more rows" in text
    assert text.splitlines()[0].strip() == "a"


def test_format_rows_empty():
    assert format_rows(["a"], []) == "(no rows)"


def test_repl_commands():
    args = build_parser().parse_args(["--scale", "0.0004", "--no-jits"])
    engine = make_engine(args)
    stdin = io.StringIO(
        "\\help\n"
        "\\tables\n"
        "\\stats\n"
        "SELECT COUNT(*)\n"
        "FROM car;\n"
        "\\explain SELECT id FROM owner;\n"
        "\\bogus\n"
        "\\q\n"
    )
    out = io.StringIO()
    repl(engine, stdin, out)
    text = out.getvalue()
    assert "car (" in text
    assert "jits enabled=False" in text
    assert "1 row(s)" in text
    assert "SeqScan" in text
    assert "unknown command" in text


def test_syntax_error_caret_points_at_token():
    args = build_parser().parse_args(["--scale", "0.0004", "--no-jits"])
    engine = make_engine(args)
    out = io.StringIO()
    sql = "SELECT id FROM car WHRE make = 'Toyota'"
    run_statement(engine, sql, explain=False, out=out)
    text = out.getvalue()
    assert "error:" in text
    lines = text.splitlines()
    assert lines[-2].strip() == sql
    caret = lines[-1]
    assert caret.strip() == "^"
    # The parser anchors the error at the token its message names.
    assert "near 'make'" in text
    assert caret.index("^") - 2 == sql.index("make")


def test_format_error_caret_bounds():
    from repro import SqlSyntaxError

    assert format_error_caret("SELECT", SqlSyntaxError("x", position=-1)) == ""
    assert format_error_caret("SELECT", SqlSyntaxError("x", position=99)) == ""
    assert "^" in format_error_caret("SELECT", SqlSyntaxError("x", position=0))


def test_serve_parser_knobs():
    args = build_serve_parser().parse_args(
        ["--port", "0", "--max-inflight", "3", "--per-client-inflight", "1"]
    )
    assert args.port == 0
    assert args.max_inflight == 3
    assert args.per_client_inflight == 1


@pytest.fixture
def live_server():
    from repro.server import ReproServer

    args = build_parser().parse_args(["--scale", "0.0004", "--no-jits"])
    server = ReproServer(make_engine(args), port=0).start_in_thread()
    yield server
    server.stop_from_thread()


def test_connect_main_one_shot(capsys, live_server):
    code = connect_main(
        [
            "--port", str(live_server.port),
            "-e", "SELECT COUNT(*) FROM owner",
            "-e", "DELETE FROM accidents WHERE id < 3",
            "-e", "SELECT id FROM car WHRE make = 'Toyota'",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "connected to 127.0.0.1" in out
    assert "1 row(s)" in out
    assert "delete:" in out
    # The caret travels over the wire via the error frame's position.
    assert "error:" in out
    assert "^" in out


def test_connect_main_refuses_dead_port(capsys):
    code = connect_main(["--port", "1", "--timeout", "0.2"])
    out = capsys.readouterr().out
    assert code == 1
    assert "error:" in out


def test_network_repl_commands(live_server):
    from repro.server import connect

    client = connect(port=live_server.port)
    stdin = io.StringIO(
        "\\help\n"
        "\\tables\n"
        "\\stats\n"
        "SELECT COUNT(*) FROM car;\n"
        "\\explain SELECT id FROM owner;\n"
        "\\q\n"
    )
    out = io.StringIO()
    with client:
        network_repl(client, stdin, out)
    text = out.getvalue()
    assert "car (" in text
    assert "statements_executed=" in text
    assert "1 row(s)" in text
    assert "SeqScan" in text or "Scan" in text
