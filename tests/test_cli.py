"""CLI smoke tests (in-process, no subprocess)."""

import io

import pytest

from repro.cli import build_parser, format_rows, main, make_engine, repl


def test_one_shot_execute(capsys):
    code = main(
        ["--scale", "0.0004", "-e", "SELECT COUNT(*) FROM owner", "--no-jits"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 row(s)" in out
    assert "col0" in out


def test_one_shot_explain(capsys):
    code = main(
        [
            "--scale", "0.0004", "--explain",
            "-e", "SELECT o.name FROM car c, owner o WHERE c.ownerid = o.id",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Join" in out or "Scan" in out


def test_one_shot_dml_and_error(capsys):
    code = main(
        [
            "--scale", "0.0004", "--no-jits",
            "-e", "DELETE FROM accidents WHERE id < 5",
            "-e", "SELECT bogus FROM owner",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "delete:" in out
    assert "error:" in out


def test_jits_note_printed(capsys):
    code = main(
        [
            "--scale", "0.0004", "--smax", "0.0",
            "-e", "SELECT id FROM car WHERE make = 'Toyota'",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "[jits] sampled car" in out


def test_format_rows_truncates():
    text = format_rows(["a"], [(i,) for i in range(30)], limit=5)
    assert "more rows" in text
    assert text.splitlines()[0].strip() == "a"


def test_format_rows_empty():
    assert format_rows(["a"], []) == "(no rows)"


def test_repl_commands():
    args = build_parser().parse_args(["--scale", "0.0004", "--no-jits"])
    engine = make_engine(args)
    stdin = io.StringIO(
        "\\help\n"
        "\\tables\n"
        "\\stats\n"
        "SELECT COUNT(*)\n"
        "FROM car;\n"
        "\\explain SELECT id FROM owner;\n"
        "\\bogus\n"
        "\\q\n"
    )
    out = io.StringIO()
    repl(engine, stdin, out)
    text = out.getvalue()
    assert "car (" in text
    assert "jits enabled=False" in text
    assert "1 row(s)" in text
    assert "SeqScan" in text
    assert "unknown command" in text
