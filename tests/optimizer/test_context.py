"""QSSProfile and StatsContext."""

import pytest

from repro.catalog import SystemCatalog
from repro.optimizer import QSSProfile, StatsContext
from repro.predicates import LocalPredicate, PredOp, PredicateGroup
from repro.storage import Database


def group(column="make", value="Toyota"):
    return PredicateGroup.of(LocalPredicate("c", column, PredOp.EQ, (value,)))


def test_profile_record_and_lookup():
    profile = QSSProfile()
    g = group()
    profile.record("CAR", g, 0.25)
    assert profile.selectivity("car", g) == pytest.approx(0.25)
    assert profile.selectivity("car", group(value="Honda")) is None
    assert profile.selectivity("owner", g) is None
    assert profile.n_groups == 1


def test_profile_group_identity_by_value():
    """Lookups work with an *equal* group built elsewhere, not the same
    object — the optimizer rebuilds groups from the query block."""
    profile = QSSProfile()
    profile.record("car", group(), 0.4)
    fresh = group()
    assert profile.selectivity("car", fresh) == pytest.approx(0.4)


def test_profile_cardinalities():
    profile = QSSProfile(table_cardinalities={"car": 100.0})
    assert profile.cardinality("CAR") == 100.0
    assert profile.cardinality("owner") is None


def test_context_defaults():
    ctx = StatsContext(database=Database(), catalog=SystemCatalog())
    assert ctx.profile is None
    assert ctx.archive is None
    assert ctx.residuals is None
    assert ctx.now == 0
