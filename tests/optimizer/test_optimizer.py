"""Top-level plan generation."""

import pytest

from repro.catalog import SystemCatalog
from repro.errors import PlanningError
from repro.optimizer import (
    Aggregate,
    DerivedScan,
    Distinct,
    Filter,
    IndexScan,
    Limit,
    Optimizer,
    Project,
    SeqScan,
    Sort,
    StatsContext,
    actual_plan_cost,
)
from repro.sql import build_query_graph, parse_select


def plan_for(sql, db, catalog=None):
    ctx = StatsContext(db, catalog if catalog is not None else SystemCatalog())
    block = build_query_graph(parse_select(sql), db)
    return Optimizer(ctx).optimize(block)


def node_types(root):
    return [type(n).__name__ for n in root.walk()]


def test_simple_scan_project(mini_db, mini_catalog):
    opt = plan_for("SELECT id FROM owner", mini_db, mini_catalog)
    assert isinstance(opt.root, Project)
    assert isinstance(opt.root.child, SeqScan)
    assert opt.root.est_rows == pytest.approx(
        mini_db.table("owner").row_count
    )


def test_scan_estimates_recorded(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'",
        mini_db,
        mini_catalog,
    )
    estimate = opt.scan_estimates["car"]
    assert estimate.group is not None and estimate.group.size == 2
    assert estimate.estimate is not None
    assert estimate.est_rows < estimate.base_rows


def test_index_scan_chosen_for_selective_pk_equality(mini_db, mini_catalog):
    opt = plan_for("SELECT make FROM car WHERE id = 5", mini_db, mini_catalog)
    scan = opt.root.child
    assert isinstance(scan, IndexScan)
    assert scan.index_kind == "hash"
    assert scan.index_column == "id"


def test_sorted_index_for_selective_range(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT id FROM car WHERE price > 49900", mini_db, mini_catalog
    )
    scan = opt.root.child
    assert isinstance(scan, IndexScan)
    assert scan.index_kind == "sorted"


def test_seq_scan_for_unselective_range(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT id FROM car WHERE price > 1", mini_db, mini_catalog
    )
    assert isinstance(opt.root.child, SeqScan)


def test_aggregate_plan_shape(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT city, COUNT(*) AS n FROM owner GROUP BY city "
        "HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 2",
        mini_db,
        mini_catalog,
    )
    names = node_types(opt.root)
    assert names[:3] == ["Limit", "Sort", "Aggregate"]


def test_group_count_estimate_uses_ndv(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT city, COUNT(*) FROM owner GROUP BY city", mini_db, mini_catalog
    )
    agg = opt.root
    assert isinstance(agg, Aggregate)
    assert agg.est_rows == pytest.approx(3.0)  # three cities


def test_distinct_node(mini_db, mini_catalog):
    opt = plan_for("SELECT DISTINCT make FROM car", mini_db, mini_catalog)
    assert isinstance(opt.root, Distinct)


def test_residual_filter_above_join(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id "
        "AND c.price > o.salary",
        mini_db,
        mini_catalog,
    )
    assert any(isinstance(n, Filter) for n in opt.root.walk())


def test_derived_table_plan(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT v.n FROM (SELECT city, COUNT(*) AS n FROM owner "
        "GROUP BY city) v WHERE v.n > 1",
        mini_db,
        mini_catalog,
    )
    derived = [n for n in opt.root.walk() if isinstance(n, DerivedScan)]
    assert len(derived) == 1
    assert derived[0].predicates  # v.n > 1 applied on the derived scan
    assert opt.child_queries


def test_order_by_rewritten_to_outputs(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT name, salary FROM owner ORDER BY salary DESC",
        mini_db,
        mini_catalog,
    )
    sort = opt.root
    assert isinstance(sort, Sort)
    assert str(sort.order_by[0].expr) == "salary"


def test_order_by_non_output_rejected(mini_db, mini_catalog):
    with pytest.raises(PlanningError):
        plan_for("SELECT name FROM owner ORDER BY salary", mini_db, mini_catalog)


def test_explain_renders(mini_db, mini_catalog):
    opt = plan_for(
        "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id",
        mini_db,
        mini_catalog,
    )
    text = opt.explain()
    assert "rows=" in text and "cost=" in text


def test_actual_plan_cost_requires_execution(mini_db, mini_catalog):
    opt = plan_for("SELECT id FROM owner", mini_db, mini_catalog)
    # Before execution all actuals are None -> cost collapses to overheads.
    base = actual_plan_cost(opt.root)
    assert base > 0

    from repro.executor import PlanExecutor

    PlanExecutor(mini_db).execute(opt)
    assert actual_plan_cost(opt.root) > base
