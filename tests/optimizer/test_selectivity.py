"""Selectivity estimation: source layering, independence, defaults."""

import pytest

from repro.catalog import SystemCatalog, collect_group_statistics, run_runstats
from repro.optimizer import (
    SOURCE_CATALOG,
    SOURCE_DEFAULT,
    SOURCE_GROUP_STATS,
    SOURCE_QSS_EXACT,
    DEFAULT_TABLE_CARDINALITY,
    QSSProfile,
    StatsContext,
    estimate_group_selectivity,
    estimate_join_selectivity,
    estimate_table_cardinality,
)
from repro.predicates import (
    JoinPredicate,
    LocalPredicate,
    PredOp,
    PredicateGroup,
    count_matches,
)


def pred(column, op, *values, alias="c"):
    return LocalPredicate(alias=alias, column=column, op=op, values=values)


def ctx_for(db, catalog=None, profile=None, archive=None):
    return StatsContext(
        database=db,
        catalog=catalog if catalog is not None else SystemCatalog(),
        profile=profile,
        archive=archive,
    )


def test_cardinality_sources(mini_db, mini_catalog):
    card, source = estimate_table_cardinality(ctx_for(mini_db), "car")
    assert card == DEFAULT_TABLE_CARDINALITY and source == SOURCE_DEFAULT
    card, source = estimate_table_cardinality(
        ctx_for(mini_db, mini_catalog), "car"
    )
    assert card == mini_db.table("car").row_count and source == SOURCE_CATALOG
    profile = QSSProfile(table_cardinalities={"car": 42.0})
    card, source = estimate_table_cardinality(
        ctx_for(mini_db, mini_catalog, profile), "car"
    )
    assert card == 42.0 and source == SOURCE_QSS_EXACT


def test_defaults_without_any_stats(mini_db):
    table = mini_db.table("car")
    group = PredicateGroup.of(pred("make", PredOp.EQ, "Toyota"))
    est = estimate_group_selectivity(ctx_for(mini_db), table, group)
    assert est.source == SOURCE_DEFAULT
    assert est.selectivity == pytest.approx(0.1)


def test_catalog_single_column_estimate(mini_db, mini_catalog):
    table = mini_db.table("car")
    group = PredicateGroup.of(pred("year", PredOp.GT, 2000))
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    actual = count_matches(table, group.predicates) / table.row_count
    assert est.source == SOURCE_CATALOG
    assert est.selectivity == pytest.approx(actual, abs=0.05)
    assert est.statlist == (("year",),)


def test_catalog_equality_uses_frequent_values(mini_db, mini_catalog):
    table = mini_db.table("car")
    group = PredicateGroup.of(pred("make", PredOp.EQ, "Toyota"))
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    actual = count_matches(table, group.predicates) / table.row_count
    assert est.selectivity == pytest.approx(actual, abs=0.02)


def test_independence_underestimates_correlated_pair(mini_db, mini_catalog):
    """The paper's central failure mode: make/model are correlated, the
    independence product is far below the truth."""
    table = mini_db.table("car")
    group = PredicateGroup.of(
        pred("make", PredOp.EQ, "Toyota"), pred("model", PredOp.EQ, "Camry")
    )
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    actual = count_matches(table, group.predicates) / table.row_count
    assert est.source == SOURCE_CATALOG
    assert len(est.statlist) == 2  # two single-column stats multiplied
    assert est.selectivity < actual * 0.6  # badly under


def test_group_stats_fix_correlation(mini_db, mini_catalog):
    table = mini_db.table("car")
    collect_group_statistics(mini_db, mini_catalog, "car", ["make", "model"])
    group = PredicateGroup.of(
        pred("make", PredOp.EQ, "Toyota"), pred("model", PredOp.EQ, "Camry")
    )
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    actual = count_matches(table, group.predicates) / table.row_count
    assert est.source == SOURCE_GROUP_STATS
    assert est.statlist == (("make", "model"),)
    assert est.selectivity == pytest.approx(actual, rel=0.5)
    assert est.selectivity > actual * 0.6


def test_qss_profile_beats_everything(mini_db, mini_catalog):
    table = mini_db.table("car")
    group = PredicateGroup.of(pred("make", PredOp.EQ, "Toyota"))
    profile = QSSProfile()
    profile.record("car", group, 0.123)
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog, profile), table, group
    )
    assert est.source == SOURCE_QSS_EXACT
    assert est.selectivity == pytest.approx(0.123)


def test_contradictory_same_column_predicates_zero(mini_db, mini_catalog):
    table = mini_db.table("car")
    group = PredicateGroup.of(
        pred("year", PredOp.GT, 2005), pred("year", PredOp.LT, 2000)
    )
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    assert est.selectivity == 0.0


def test_unknown_string_equality_zero(mini_db, mini_catalog):
    table = mini_db.table("car")
    group = PredicateGroup.of(pred("make", PredOp.EQ, "NotAMake"))
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    assert est.selectivity == pytest.approx(0.0)


def test_join_selectivity_pk_fk(mini_db, mini_catalog):
    join = JoinPredicate("c", "ownerid", "o", "id")
    sel = estimate_join_selectivity(
        ctx_for(mini_db, mini_catalog),
        mini_db.table("car"),
        mini_db.table("owner"),
        join,
    )
    assert sel == pytest.approx(1.0 / mini_db.table("owner").row_count, rel=0.01)


def test_join_selectivity_pk_without_stats(mini_db):
    # Even with no stats, the schema knows the PK is unique.
    join = JoinPredicate("c", "ownerid", "o", "id")
    sel = estimate_join_selectivity(
        ctx_for(mini_db), mini_db.table("car"), mini_db.table("owner"), join
    )
    assert sel == pytest.approx(1.0 / DEFAULT_TABLE_CARDINALITY)


def test_join_selectivity_defaults_for_derived():
    from repro.storage import Database

    db = Database()
    join = JoinPredicate("a", "x", "b", "y")
    sel = estimate_join_selectivity(ctx_for(db), None, None, join)
    assert sel == pytest.approx(0.1)


def test_estimates_clamped(mini_db, mini_catalog):
    table = mini_db.table("car")
    group = PredicateGroup.of(
        pred("make", PredOp.IN, "Toyota", "Honda", "Ford")
    )
    est = estimate_group_selectivity(
        ctx_for(mini_db, mini_catalog), table, group
    )
    assert 0.0 <= est.clamped() <= 1.0
