"""Cost model ranking properties (what actually matters to plan choice)."""

from repro.optimizer import cost


def test_index_nl_beats_hash_for_tiny_outer():
    hash_cost = cost.hash_join_cost(50_000, 10, 10)
    inl_cost = cost.index_nl_join_cost(10, 10)
    assert inl_cost < hash_cost


def test_hash_beats_index_nl_for_large_outer():
    hash_cost = cost.hash_join_cost(50_000, 50_000, 50_000)
    inl_cost = cost.index_nl_join_cost(50_000, 50_000)
    assert hash_cost < inl_cost


def test_nested_loop_only_for_tiny_inputs():
    assert cost.nested_loop_cost(5, 5, 5) < cost.hash_join_cost(5, 5, 5)
    assert cost.nested_loop_cost(10_000, 10_000, 10) > cost.hash_join_cost(
        10_000, 10_000, 10
    )


def test_index_scan_beats_seq_scan_when_selective():
    seq = cost.seq_scan_cost(100_000, 1)
    idx = cost.index_scan_cost(50, 0)
    assert idx < seq


def test_seq_scan_beats_index_scan_when_unselective():
    seq = cost.seq_scan_cost(10_000, 1)
    idx = cost.index_scan_cost(9_000, 0)
    assert seq < idx


def test_costs_monotone_in_rows():
    assert cost.seq_scan_cost(2_000, 1) > cost.seq_scan_cost(1_000, 1)
    assert cost.hash_join_cost(100, 2_000, 10) > cost.hash_join_cost(100, 1_000, 10)
    assert cost.sort_cost(10_000) > cost.sort_cost(1_000)
    assert cost.aggregate_cost(5_000, 10) > cost.aggregate_cost(500, 10)


def test_all_costs_positive():
    assert cost.seq_scan_cost(0, 0) > 0
    assert cost.sort_cost(0) > 0
    assert cost.sort_cost(1) > 0
    assert cost.filter_cost(0, 0) > 0
    assert cost.distinct_cost(0) > 0
    assert cost.materialize_cost(0) > 0
    assert cost.index_scan_cost(0, 0) > 0


def test_pages():
    assert cost.pages(0) == 1.0
    assert cost.pages(1_000) == 10.0
