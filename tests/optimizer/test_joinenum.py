"""Dynamic-programming join enumeration."""

import pytest

from repro.errors import PlanningError
from repro.optimizer import (
    BaseRelation,
    HashJoin,
    IndexNLJoin,
    NestedLoopJoin,
    SeqScan,
    enumerate_joins,
)
from repro.predicates import JoinPredicate


def rel(alias, rows, table=None, indexed=(), cost=10.0):
    plan = SeqScan(
        alias=alias,
        table_name=table or alias,
        est_rows=rows,
        est_cost=cost,
        base_rows=rows,
    )
    return BaseRelation(
        alias=alias,
        plan=plan,
        filtered_rows=rows,
        table_name=table or alias,
        indexed_columns=tuple(indexed),
    )


def aliases_of(plan):
    out = set()
    for node in plan.walk():
        if isinstance(node, SeqScan):
            out.add(node.alias)
        if isinstance(node, IndexNLJoin):
            out.add(node.inner_alias)
    return out


def test_single_pair_hash_join():
    relations = [rel("a", 10_000), rel("b", 10_000)]
    joins = [JoinPredicate("a", "x", "b", "y")]
    plan = enumerate_joins(relations, joins, [0.0001])
    assert isinstance(plan, (HashJoin, NestedLoopJoin, IndexNLJoin))
    assert aliases_of(plan) == {"a", "b"}


def test_large_tables_prefer_hash():
    relations = [rel("a", 50_000, indexed=("x",)), rel("b", 50_000, indexed=("y",))]
    joins = [JoinPredicate("a", "x", "b", "y")]
    plan = enumerate_joins(relations, joins, [1.0 / 50_000])
    assert isinstance(plan, HashJoin)


def test_tiny_outer_with_index_prefers_inl():
    relations = [rel("a", 3), rel("b", 100_000, indexed=("y",))]
    joins = [JoinPredicate("a", "x", "b", "y")]
    plan = enumerate_joins(relations, joins, [1.0 / 100_000])
    assert isinstance(plan, IndexNLJoin)
    assert plan.inner_alias == "b"


def test_no_index_no_inl():
    relations = [rel("a", 3), rel("b", 100_000, indexed=())]
    joins = [JoinPredicate("a", "x", "b", "y")]
    plan = enumerate_joins(relations, joins, [1.0 / 100_000])
    assert not isinstance(plan, IndexNLJoin)


def test_join_order_filters_first():
    """The selective relation should be joined early (smallest
    intermediates)."""
    relations = [
        rel("big1", 80_000),
        rel("big2", 80_000),
        rel("tiny", 5, indexed=("k",)),
    ]
    joins = [
        JoinPredicate("big1", "x", "big2", "y"),
        JoinPredicate("big2", "z", "tiny", "k"),
    ]
    plan = enumerate_joins(relations, joins, [1 / 80_000, 1 / 80_000])
    assert aliases_of(plan) == {"big1", "big2", "tiny"}
    # The first join executed (deepest) must involve 'tiny'.
    deepest = plan
    while deepest.children():
        joins_below = [
            c for c in deepest.children() if not isinstance(c, SeqScan)
        ]
        if not joins_below:
            break
        deepest = joins_below[0]
    assert "tiny" in aliases_of(deepest)


def test_cross_product_when_disconnected():
    relations = [rel("a", 10), rel("b", 10)]
    plan = enumerate_joins(relations, [], [])
    assert isinstance(plan, NestedLoopJoin)
    assert plan.join_predicates == ()
    assert plan.est_rows == pytest.approx(100)


def test_cross_product_avoided_when_connected():
    relations = [rel("a", 100), rel("b", 100), rel("c", 100)]
    joins = [
        JoinPredicate("a", "x", "b", "y"),
        JoinPredicate("b", "z", "c", "w"),
    ]
    plan = enumerate_joins(relations, joins, [0.01, 0.01])
    for node in plan.walk():
        if isinstance(node, NestedLoopJoin):
            assert node.join_predicates  # never a bare cross product


def test_single_relation_passthrough():
    r = rel("a", 5)
    plan = enumerate_joins([r], [], [])
    assert plan is r.plan


def test_cardinality_uses_join_selectivities():
    relations = [rel("a", 1_000), rel("b", 1_000)]
    joins = [JoinPredicate("a", "x", "b", "y")]
    plan = enumerate_joins(relations, joins, [0.001])
    assert plan.est_rows == pytest.approx(1_000)


def test_unknown_alias_in_predicate_rejected():
    relations = [rel("a", 10), rel("b", 10)]
    joins = [JoinPredicate("a", "x", "zz", "y")]
    with pytest.raises(PlanningError):
        enumerate_joins(relations, joins, [0.1])


def test_duplicate_alias_rejected():
    with pytest.raises(PlanningError):
        enumerate_joins([rel("a", 1), rel("a", 2)], [], [])


def test_empty_rejected():
    with pytest.raises(PlanningError):
        enumerate_joins([], [], [])


def test_five_way_join_completes():
    relations = [rel(f"t{i}", 1_000 * (i + 1)) for i in range(5)]
    joins = [
        JoinPredicate(f"t{i}", "x", f"t{i+1}", "y") for i in range(4)
    ]
    plan = enumerate_joins(relations, joins, [0.001] * 4)
    assert aliases_of(plan) == {f"t{i}" for i in range(5)}
