"""Predicate and group model."""

import pytest

from repro.errors import PlanningError
from repro.predicates import JoinPredicate, LocalPredicate, PredOp, PredicateGroup


def pred(column="make", op=PredOp.EQ, values=("Toyota",), alias="c"):
    return LocalPredicate(alias=alias, column=column, op=op, values=values)


def test_names_lowercased():
    p = LocalPredicate(alias="C", column="Make", op=PredOp.EQ, values=("x",))
    assert p.alias == "c" and p.column == "make"


def test_arity_validation():
    with pytest.raises(PlanningError):
        pred(op=PredOp.BETWEEN, values=(1,))
    with pytest.raises(PlanningError):
        pred(op=PredOp.IN, values=())
    with pytest.raises(PlanningError):
        pred(op=PredOp.EQ, values=(1, 2))


def test_predicates_hashable_and_equal():
    assert pred() == pred()
    assert len({pred(), pred()}) == 1
    assert pred() != pred(values=("Honda",))


def test_str_forms():
    assert "BETWEEN" in str(pred(op=PredOp.BETWEEN, values=(1, 2)))
    assert "IN" in str(pred(op=PredOp.IN, values=(1, 2, 3)))
    assert "=" in str(pred())


def test_group_requires_single_alias():
    with pytest.raises(PlanningError):
        PredicateGroup.of(pred(alias="a"), pred(alias="b", column="x"))
    with pytest.raises(PlanningError):
        PredicateGroup(frozenset())


def test_group_columns_canonical():
    g = PredicateGroup.of(
        pred(column="model"), pred(column="make"), pred(column="make", op=PredOp.NE)
    )
    assert g.columns() == ("make", "model")
    assert g.size == 3


def test_group_contains():
    a, b = pred(column="make"), pred(column="model")
    big = PredicateGroup.of(a, b)
    small = PredicateGroup.of(a)
    assert big.contains(small)
    assert not small.contains(big)


def test_group_equality_independent_of_order():
    a, b = pred(column="make"), pred(column="model")
    assert PredicateGroup.of(a, b) == PredicateGroup.of(b, a)


def test_group_iteration_deterministic():
    g = PredicateGroup.of(pred(column="z"), pred(column="a"), pred(column="m"))
    assert [p.column for p in g] == ["a", "m", "z"]


def test_join_predicate_sides():
    j = JoinPredicate("C", "OwnerId", "O", "Id")
    assert j.aliases() == frozenset({"c", "o"})
    assert j.column_for("c") == "ownerid"
    assert j.side_for("o") == ("id", "c")
    with pytest.raises(PlanningError):
        j.column_for("x")
