"""Vectorized predicate evaluation vs a Python-level oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DataType, make_schema
from repro.errors import ExecutionError
from repro.predicates import (
    LocalPredicate,
    PredOp,
    count_matches,
    group_mask,
    predicate_mask,
)
from repro.storage import Table


def small_table():
    t = Table(
        make_schema(
            "t",
            [("x", DataType.INT), ("name", DataType.STRING), ("v", DataType.FLOAT)],
        )
    )
    t.insert_columns(
        {
            "x": np.array([1, 2, 3, 4, 5]),
            "name": ["a", "b", "a", "c", "b"],
            "v": np.array([1.5, 2.5, 3.5, 4.5, 5.5]),
        }
    )
    return t


def p(column, op, *values):
    return LocalPredicate(alias="t", column=column, op=op, values=values)


def test_eq_int():
    t = small_table()
    assert predicate_mask(t, p("x", PredOp.EQ, 3)).tolist() == [
        False, False, True, False, False,
    ]


def test_eq_string_and_missing():
    t = small_table()
    assert predicate_mask(t, p("name", PredOp.EQ, "a")).sum() == 2
    assert predicate_mask(t, p("name", PredOp.EQ, "zzz")).sum() == 0
    assert predicate_mask(t, p("name", PredOp.NE, "zzz")).sum() == 5


def test_in_list_with_missing_members():
    t = small_table()
    mask = predicate_mask(t, p("name", PredOp.IN, "a", "ghost", "c"))
    assert mask.tolist() == [True, False, True, True, False]


def test_ranges():
    t = small_table()
    assert predicate_mask(t, p("x", PredOp.GT, 3)).sum() == 2
    assert predicate_mask(t, p("x", PredOp.GE, 3)).sum() == 3
    assert predicate_mask(t, p("x", PredOp.LT, 3)).sum() == 2
    assert predicate_mask(t, p("x", PredOp.LE, 3)).sum() == 3
    assert predicate_mask(t, p("v", PredOp.BETWEEN, 2.0, 4.0)).sum() == 2


def test_range_on_string_rejected():
    t = small_table()
    with pytest.raises(ExecutionError):
        predicate_mask(t, p("name", PredOp.GT, "a"))


def test_rows_subset():
    t = small_table()
    rows = np.array([0, 2, 4])
    mask = predicate_mask(t, p("x", PredOp.GT, 1), rows)
    assert mask.tolist() == [False, True, True]


def test_group_mask_conjunction():
    t = small_table()
    mask = group_mask(t, [p("x", PredOp.GT, 1), p("name", PredOp.EQ, "a")])
    assert mask.tolist() == [False, False, True, False, False]


def test_group_mask_empty_group_all_true():
    t = small_table()
    assert group_mask(t, []).all()


def test_count_matches():
    t = small_table()
    assert count_matches(t, [p("x", PredOp.LE, 4)]) == 4


_OPS = [PredOp.EQ, PredOp.NE, PredOp.LT, PredOp.LE, PredOp.GT, PredOp.GE]


def _oracle(values, op, operand, hi=None):
    out = []
    for v in values:
        if op is PredOp.EQ:
            out.append(v == operand)
        elif op is PredOp.NE:
            out.append(v != operand)
        elif op is PredOp.LT:
            out.append(v < operand)
        elif op is PredOp.LE:
            out.append(v <= operand)
        elif op is PredOp.GT:
            out.append(v > operand)
        elif op is PredOp.GE:
            out.append(v >= operand)
        elif op is PredOp.BETWEEN:
            out.append(operand <= v <= hi)
    return out


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=50),
    st.sampled_from(_OPS),
    st.integers(min_value=-22, max_value=22),
)
def test_int_predicates_match_oracle(values, op, operand):
    t = Table(make_schema("t", [("x", DataType.INT)]))
    t.insert_columns({"x": np.asarray(values, dtype=np.int64)})
    pred = LocalPredicate("t", "x", op, (operand,))
    assert predicate_mask(t, pred).tolist() == _oracle(values, op, operand)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=-20, max_value=20), min_size=1, max_size=50),
    st.integers(min_value=-22, max_value=22),
    st.integers(min_value=-22, max_value=22),
)
def test_between_matches_oracle(values, a, b):
    lo, hi = min(a, b), max(a, b)
    t = Table(make_schema("t", [("x", DataType.INT)]))
    t.insert_columns({"x": np.asarray(values, dtype=np.int64)})
    pred = LocalPredicate("t", "x", PredOp.BETWEEN, (lo, hi))
    assert predicate_mask(t, pred).tolist() == _oracle(
        values, PredOp.BETWEEN, lo, hi
    )
