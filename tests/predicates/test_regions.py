"""Predicate -> region mapping on the physical value space."""

import math

from repro.histograms import Interval
from repro.predicates import (
    LocalPredicate,
    PredOp,
    PredicateGroup,
    group_region,
    predicate_interval,
    region_for_columns,
)


def car_pred(db, column, op, *values):
    return (
        db.table("car"),
        LocalPredicate(alias="c", column=column, op=op, values=values),
    )


def test_eq_int_half_open(mini_db):
    table, p = car_pred(mini_db, "year", PredOp.EQ, 2000)
    assert predicate_interval(table, p) == Interval(2000.0, 2001.0)


def test_eq_string_maps_to_code(mini_db):
    table, p = car_pred(mini_db, "make", PredOp.EQ, "Toyota")
    iv = predicate_interval(table, p)
    code = table.column("make").lookup_value("Toyota")
    assert iv == Interval(float(code), float(code) + 1.0)


def test_eq_unknown_string_empty(mini_db):
    table, p = car_pred(mini_db, "make", PredOp.EQ, "Lada")
    assert predicate_interval(table, p).is_empty


def test_range_int_adjustment(mini_db):
    table, p = car_pred(mini_db, "year", PredOp.GT, 2000)
    assert predicate_interval(table, p) == Interval(2001.0, math.inf)
    table, p = car_pred(mini_db, "year", PredOp.GE, 2000)
    assert predicate_interval(table, p) == Interval(2000.0, math.inf)
    table, p = car_pred(mini_db, "year", PredOp.LE, 2000)
    assert predicate_interval(table, p) == Interval(-math.inf, 2001.0)
    table, p = car_pred(mini_db, "year", PredOp.LT, 2000)
    assert predicate_interval(table, p) == Interval(-math.inf, 2000.0)


def test_range_float_continuous(mini_db):
    table, p = car_pred(mini_db, "price", PredOp.GT, 5000.0)
    iv = predicate_interval(table, p)
    assert iv.low > 5000.0  # nextafter
    assert iv.high == math.inf


def test_between_int_inclusive(mini_db):
    table, p = car_pred(mini_db, "year", PredOp.BETWEEN, 2000, 2005)
    assert predicate_interval(table, p) == Interval(2000.0, 2006.0)


def test_ne_not_representable(mini_db):
    table, p = car_pred(mini_db, "year", PredOp.NE, 2000)
    assert predicate_interval(table, p) is None


def test_multi_in_not_representable(mini_db):
    table, p = car_pred(mini_db, "make", PredOp.IN, "Toyota", "Honda")
    assert predicate_interval(table, p) is None


def test_single_in_is_point(mini_db):
    table, p = car_pred(mini_db, "make", PredOp.IN, "Toyota")
    assert not predicate_interval(table, p).is_empty


def test_group_region_intersects_same_column(mini_db):
    table = mini_db.table("car")
    g = PredicateGroup.of(
        LocalPredicate("c", "year", PredOp.GT, (2000,)),
        LocalPredicate("c", "year", PredOp.LE, (2005,)),
    )
    columns, region = group_region(table, g)
    assert columns == ("year",)
    assert region.intervals[0] == Interval(2001.0, 2006.0)


def test_group_region_multi_column_sorted(mini_db):
    table = mini_db.table("car")
    g = PredicateGroup.of(
        LocalPredicate("c", "year", PredOp.GT, (2000,)),
        LocalPredicate("c", "make", PredOp.EQ, ("Toyota",)),
    )
    columns, region = group_region(table, g)
    assert columns == ("make", "year")
    assert region.ndim == 2


def test_group_region_none_when_unrepresentable(mini_db):
    table = mini_db.table("car")
    g = PredicateGroup.of(LocalPredicate("c", "year", PredOp.NE, (2000,)))
    assert group_region(table, g) is None


def test_region_for_columns_pads_unconstrained(mini_db):
    table = mini_db.table("car")
    g = PredicateGroup.of(LocalPredicate("c", "year", PredOp.EQ, (2000,)))
    region = region_for_columns(table, g, ("make", "year"))
    assert region.intervals[0].is_unbounded
    assert region.intervals[1] == Interval(2000.0, 2001.0)


def test_region_for_columns_rejects_missing_columns(mini_db):
    table = mini_db.table("car")
    g = PredicateGroup.of(LocalPredicate("c", "year", PredOp.EQ, (2000,)))
    assert region_for_columns(table, g, ("make",)) is None
