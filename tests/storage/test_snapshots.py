"""MVCC snapshot chain: chunk COW sharing, AS OF replay, pin/GC soundness.

Seeded property tests for the copy-on-write guarantees documented in
``repro.storage.snapshot``:

* untouched chunks are shared *by object identity* across generations
  (and an untouched column shares the whole ColumnSnapshot object);
* pinning AS OF any retained stamp reproduces exactly the state a
  sequential replay of the same mutations had at that point;
* the bounded retention window never drops a pinned generation, and an
  unpinned out-of-window generation really is freed (weakref dies under
  forced ``gc.collect()``).
"""

import gc
import random
import weakref

import numpy as np
import pytest

from repro import DataType, make_schema
from repro.errors import StorageError
from repro.storage import Table
from repro.storage.table import UDIShard, udi_shard_scope


def make_table(chunk_rows=4, snapshot_retention=64) -> Table:
    return Table(
        make_schema(
            "emp",
            [
                ("id", DataType.INT),
                ("name", DataType.STRING),
                ("pay", DataType.FLOAT),
            ],
            primary_key="id",
        ),
        chunk_rows=chunk_rows,
        snapshot_retention=snapshot_retention,
    )


def fill(table: Table, n: int) -> None:
    table.insert_rows(
        [
            {"id": i, "name": f"n{i % 5}", "pay": float(i) * 1.5}
            for i in range(n)
        ]
    )


# ----------------------------------------------------------------------
# (a) chunk sharing by object identity
# ----------------------------------------------------------------------
def test_untouched_column_shares_whole_snapshot_object():
    t = make_table()
    fill(t, 16)
    before = t.current_snapshot
    t.update_rows(np.array([3]), {"pay": 999.0})
    after = t.current_snapshot
    assert after is not before
    assert after.version == before.version + 1
    # Only "pay" was touched: id/name carry the identical ColumnSnapshot.
    assert after.column("id") is before.column("id")
    assert after.column("name") is before.column("name")
    assert after.column("pay") is not before.column("pay")


def test_only_dirty_chunks_are_copied():
    t = make_table(chunk_rows=4)
    fill(t, 16)  # chunks 0..3
    before = t.current_snapshot
    t.update_rows(np.array([9]), {"pay": -1.0})  # chunk 2
    after = t.current_snapshot
    old = before.column("pay").chunks
    new = after.column("pay").chunks
    assert len(old) == len(new) == 4
    for i in range(4):
        if i == 2:
            assert new[i] is not old[i]
        else:
            assert new[i] is old[i]
    assert new[2][1] == -1.0
    assert not new[2].flags.writeable


def test_append_dirties_only_the_tail_chunk():
    t = make_table(chunk_rows=4)
    fill(t, 10)  # chunks: 4, 4, 2
    before = t.current_snapshot
    t.insert_rows([{"id": 10, "name": "x", "pay": 0.5}])
    after = t.current_snapshot
    old = before.column("id").chunks
    new = after.column("id").chunks
    assert new[0] is old[0] and new[1] is old[1]
    assert new[2] is not old[2]
    assert after.row_count == 11 and before.row_count == 10


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_chunk_sharing_property_random_dml(seed):
    """Across a random mutation history, every pair of adjacent
    generations shares exactly the chunks the statement did not touch."""
    rng = random.Random(seed)
    t = make_table(chunk_rows=8, snapshot_retention=256)
    fill(t, 64)
    next_id = 64
    for _ in range(30):
        before = t.current_snapshot
        kind = rng.choice(["update", "insert", "delete"])
        if kind == "update":
            row = rng.randrange(t.row_count)
            t.update_rows(np.array([row]), {"pay": rng.random() * 100})
            touched_from = (row // t.chunk_rows) * t.chunk_rows
        elif kind == "insert":
            t.insert_rows(
                [{"id": next_id, "name": "z", "pay": 1.0}]
            )
            next_id += 1
            touched_from = before.row_count
        else:
            row = rng.randrange(t.row_count)
            t.delete_rows(np.array([row]))
            touched_from = row  # compaction shifts everything after
        after = t.current_snapshot
        first_dirty = touched_from // t.chunk_rows
        shared = after.column("pay").chunks[:first_dirty]
        for i, chunk in enumerate(shared):
            assert chunk is before.column("pay").chunks[i]


# ----------------------------------------------------------------------
# (b) AS OF every retained stamp == sequential replay
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [3, 101, 777])
def test_pin_as_of_reproduces_replayed_state(seed):
    rng = random.Random(seed)
    t = make_table(chunk_rows=8, snapshot_retention=256)
    fill(t, 40)
    cols = ["id", "name", "pay"]
    history = {t.snapshot_stamp: t.fetch_rows(None, cols)}
    next_id = 1000
    stamp = 100
    for _ in range(25):
        kind = rng.choice(["update", "insert", "delete"])
        shard = UDIShard()
        with udi_shard_scope(shard):
            if kind == "update":
                rows = np.array(
                    sorted(rng.sample(range(t.row_count), k=min(3, t.row_count)))
                )
                t.update_rows(rows, {"pay": round(rng.random() * 50, 2)})
            elif kind == "insert":
                t.insert_rows(
                    [
                        {"id": next_id + j, "name": f"m{j}", "pay": 2.0}
                        for j in range(rng.randrange(1, 4))
                    ]
                )
                next_id += 4
            else:
                t.delete_rows(np.array([rng.randrange(t.row_count)]))
        shard.flush()
        stamp += rng.randrange(1, 5)
        t.publish_snapshot(stamp=stamp)
        history[stamp] = t.fetch_rows(None, cols)

    # Retained: the empty bootstrap generation, the filled one, + 25 DML.
    assert len(t.snapshots()) == len(history) + 1
    for at_stamp, expected in history.items():
        snap = t.pin_as_of(at_stamp)
        try:
            assert snap.stamp == at_stamp
            assert snap.fetch_rows(None, cols) == expected
        finally:
            snap.release()
    # Between-stamp clocks resolve to the newest earlier generation.
    stamps = sorted(history)
    mid = stamps[len(stamps) // 2]
    snap = t.pin_as_of(mid + 0)  # exact
    snap.release()
    snap = t.pin_as_of(stamps[-1] + 10_000)  # far future -> current
    try:
        assert snap is t.current_snapshot
    finally:
        snap.release()
    with pytest.raises(StorageError):
        t.pin_as_of(stamps[0] - 1)


# ----------------------------------------------------------------------
# (c) GC / retention soundness
# ----------------------------------------------------------------------
def test_retention_never_drops_pinned_generation():
    t = make_table(chunk_rows=4, snapshot_retention=2)
    fill(t, 8)
    pinned = t.pin_current()
    want = pinned.fetch_rows(None, ["id", "pay"])
    for i in range(10):
        t.update_rows(np.array([0]), {"pay": float(i)})
        gc.collect()
        assert pinned in t.snapshots(), "pinned generation was trimmed"
        assert pinned.fetch_rows(None, ["id", "pay"]) == want
    # The pinned survivor occupies a slot of the bounded window.
    assert len(t.snapshots()) == t.snapshot_retention
    pinned.release()
    t.update_rows(np.array([0]), {"pay": -5.0})
    assert pinned not in t.snapshots()
    assert len(t.snapshots()) == t.snapshot_retention


def test_unpinned_generation_is_actually_freed():
    t = make_table(chunk_rows=4, snapshot_retention=1)
    fill(t, 8)
    t.update_rows(np.array([1]), {"pay": 1.0})
    old = t.current_snapshot
    ref = weakref.ref(old)
    # Mutate twice: old falls out of the window with zero pins. Touch
    # every chunk so no shared arrays keep the generation's data alive.
    t.update_rows(np.arange(8), {"pay": 2.0})
    t.update_rows(np.arange(8), {"pay": 3.0})
    assert old not in t.snapshots()
    del old
    gc.collect()
    assert ref() is None, "unpinned out-of-window generation leaked"


def test_double_pin_needs_double_release():
    t = make_table(snapshot_retention=1)
    fill(t, 4)
    a = t.pin_current()
    b = t.pin_current()
    assert a is b and a.pins == 2
    a.release()
    t.update_rows(np.array([0]), {"pay": 9.0})
    assert a in t.snapshots()  # still pinned once
    b.release()
    t.update_rows(np.array([0]), {"pay": 10.0})
    assert a not in t.snapshots()


# ----------------------------------------------------------------------
# (d) regression: version bumps only at publish, never mid-statement
# ----------------------------------------------------------------------
def test_version_bump_deferred_to_publish_under_shard():
    t = make_table()
    fill(t, 8)
    v0 = t.version
    snap0 = t.current_snapshot
    shard = UDIShard()
    with udi_shard_scope(shard):
        t.update_rows(np.array([0]), {"pay": 7.0})
        t.update_rows(np.array([1]), {"pay": 8.0})
        # Mid-statement: no publish, no version bump, no UDI fold yet.
        assert t.version == v0
        assert t.current_snapshot is snap0
        assert t.udi_total == snap0.udi_total
    assert shard.pending_tables() == [t]
    shard.flush()
    published = t.publish_snapshot(stamp=42)
    assert t.version == v0 + 1
    assert published.version == v0 + 1
    assert published.stamp == 42
    assert published.udi_total == snap0.udi_total + 2
    # Publishing again without mutations is a no-op.
    assert t.publish_snapshot(stamp=99) is published


def test_direct_api_publishes_per_mutation():
    t = make_table()
    fill(t, 4)
    v = t.version
    t.update_rows(np.array([2]), {"pay": 0.25})
    assert t.version == v + 1
    assert t.current_snapshot.fetch_rows(None, ["pay"])[2] == (0.25,)
