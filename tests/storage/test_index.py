"""Hash and sorted indexes: correctness, laziness, invalidation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import DataType, make_schema
from repro.storage import Database, Table
from repro.storage.index import HashIndex, SortedIndex


def make_table(values) -> Table:
    t = Table(make_schema("t", [("k", DataType.INT), ("v", DataType.FLOAT)]))
    t.insert_columns(
        {"k": np.asarray(values, dtype=np.int64), "v": np.zeros(len(values))}
    )
    return t


def test_hash_lookup_matches_scan():
    t = make_table([5, 3, 5, 7, 3, 5])
    idx = HashIndex(t, "k")
    assert np.array_equal(np.sort(idx.lookup(5)), np.array([0, 2, 5]))
    assert np.array_equal(np.sort(idx.lookup(3)), np.array([1, 4]))
    assert len(idx.lookup(99)) == 0


def test_hash_lookup_float_value_on_int_column():
    t = make_table([1, 2, 3])
    idx = HashIndex(t, "k")
    assert np.array_equal(idx.lookup(2.0), np.array([1]))
    assert len(idx.lookup(2.5)) == 0


def test_hash_n_distinct():
    t = make_table([1, 1, 2, 3, 3, 3])
    assert HashIndex(t, "k").n_distinct() == 3


def test_hash_sparse_keys_use_dict_fallback():
    # Key span far larger than table -> dict path.
    t = make_table([10**12, 5, 10**12])
    idx = HashIndex(t, "k")
    assert not idx._dense
    assert np.array_equal(np.sort(idx.lookup(10**12)), np.array([0, 2]))


def test_hash_dense_path_for_compact_keys():
    t = make_table(list(range(100)))
    idx = HashIndex(t, "k")
    idx._ensure()
    assert idx._dense
    assert np.array_equal(idx.lookup(42), np.array([42]))


def test_hash_rebuilds_after_key_mutation():
    t = make_table([1, 2, 3])
    idx = HashIndex(t, "k")
    assert np.array_equal(idx.lookup(2), np.array([1]))
    t.update_rows(np.array([1]), {"k": 9})
    assert len(idx.lookup(2)) == 0
    assert np.array_equal(idx.lookup(9), np.array([1]))


def test_hash_not_invalidated_by_other_column_update():
    t = make_table([1, 2, 3])
    idx = HashIndex(t, "k")
    idx.lookup(1)
    built = idx._built_version
    t.update_rows(np.array([0]), {"v": 5.0})
    idx.lookup(1)
    assert idx._built_version == built  # no rebuild


def test_sorted_range_lookup():
    t = make_table([10, 40, 20, 30, 50])
    idx = SortedIndex(t, "k")
    rows = idx.range_lookup(20, 40)
    assert np.array_equal(rows, np.array([1, 2, 3]))


def test_sorted_exclusive_bounds():
    t = make_table([10, 20, 30])
    idx = SortedIndex(t, "k")
    assert np.array_equal(
        idx.range_lookup(10, 30, low_inclusive=False, high_inclusive=False),
        np.array([1]),
    )


def test_sorted_open_ended():
    t = make_table([5, 1, 9])
    idx = SortedIndex(t, "k")
    assert np.array_equal(idx.range_lookup(None, 5), np.array([0, 1]))
    assert np.array_equal(idx.range_lookup(5, None), np.array([0, 2]))


def test_sorted_empty_range():
    t = make_table([1, 2, 3])
    idx = SortedIndex(t, "k")
    assert len(idx.range_lookup(10, 20)) == 0


def test_index_set_creation_and_lookup(mini_db: Database):
    indexes = mini_db.indexes("car")
    assert indexes.hash_on("id") is not None  # PK auto-index
    assert indexes.hash_on("ownerid") is not None
    assert indexes.sorted_on("price") is not None
    assert indexes.hash_on("price") is None


@given(
    st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=60),
    st.integers(min_value=-50, max_value=50),
)
def test_hash_lookup_property(values, key):
    t = make_table(values)
    idx = HashIndex(t, "k")
    expected = np.flatnonzero(np.asarray(values) == key)
    assert np.array_equal(np.sort(idx.lookup(key)), expected)


@given(
    st.lists(st.integers(min_value=-30, max_value=30), min_size=1, max_size=60),
    st.integers(min_value=-31, max_value=31),
    st.integers(min_value=-31, max_value=31),
)
def test_sorted_range_property(values, lo, hi):
    t = make_table(values)
    idx = SortedIndex(t, "k")
    arr = np.asarray(values)
    expected = np.flatnonzero((arr >= lo) & (arr <= hi))
    assert np.array_equal(idx.range_lookup(lo, hi), expected)
