"""StringDictionary: encoding, lookup, ordering helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage import MISSING_CODE, StringDictionary


def test_encode_assigns_sequential_codes():
    d = StringDictionary()
    assert d.encode("a") == 0
    assert d.encode("b") == 1
    assert d.encode("a") == 0
    assert len(d) == 2


def test_lookup_missing_returns_sentinel():
    d = StringDictionary(["x"])
    assert d.lookup("x") == 0
    assert d.lookup("nope") == MISSING_CODE


def test_find_code_returns_none_for_missing():
    d = StringDictionary(["x"])
    assert d.find_code("x") == 0
    assert d.find_code("y") is None


def test_decode_roundtrip():
    d = StringDictionary()
    values = ["apple", "banana", "apple", "cherry"]
    codes = d.encode_many(values)
    assert d.decode_many(codes) == values


def test_decode_out_of_range_raises():
    d = StringDictionary(["only"])
    with pytest.raises(StorageError):
        d.decode(5)
    with pytest.raises(StorageError):
        d.decode(-1)


def test_encode_rejects_non_strings():
    d = StringDictionary()
    with pytest.raises(StorageError):
        d.encode(42)  # type: ignore[arg-type]


def test_contains():
    d = StringDictionary(["a"])
    assert "a" in d
    assert "b" not in d


def test_sort_permutation_orders_lexicographically():
    d = StringDictionary(["pear", "apple", "zebra", "mango"])
    perm = d.sort_permutation()
    ordered = [d.decode(int(c)) for c in perm]
    assert ordered == sorted(["pear", "apple", "zebra", "mango"])


def test_rank_of():
    d = StringDictionary(["b", "a", "c"])
    assert d.rank_of(d.lookup("a")) == 0
    assert d.rank_of(d.lookup("b")) == 1
    assert d.rank_of(d.lookup("c")) == 2


def test_copy_is_independent():
    d = StringDictionary(["a"])
    clone = d.copy()
    clone.encode("b")
    assert len(d) == 1
    assert len(clone) == 2


def test_values_ordered_by_code():
    d = StringDictionary(["z", "m", "a"])
    assert d.values() == ["z", "m", "a"]


@given(st.lists(st.text(max_size=8)))
def test_roundtrip_property(values):
    d = StringDictionary()
    codes = [d.encode(v) for v in values]
    assert [d.decode(c) for c in codes] == values
    # Codes are dense: 0..n_distinct-1.
    distinct = len(set(values))
    assert len(d) == distinct
    if codes:
        assert max(codes) == distinct - 1


@given(st.lists(st.text(max_size=6), min_size=1, unique=True))
def test_sort_permutation_property(values):
    d = StringDictionary(values)
    perm = d.sort_permutation()
    decoded = [d.decode(int(c)) for c in perm]
    assert decoded == sorted(values)
    assert sorted(perm.tolist()) == list(range(len(values)))
