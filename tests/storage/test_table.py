"""Table: DML operations and UDI accounting."""

import numpy as np
import pytest

from repro import DataType, make_schema
from repro.errors import StorageError
from repro.storage import Table


def make_table() -> Table:
    return Table(
        make_schema(
            "emp",
            [("id", DataType.INT), ("name", DataType.STRING), ("pay", DataType.FLOAT)],
            primary_key="id",
        )
    )


def test_insert_rows_and_fetch():
    t = make_table()
    t.insert_rows(
        [
            {"id": 1, "name": "a", "pay": 10.0},
            {"id": 2, "name": "b", "pay": 20.0},
        ]
    )
    assert t.row_count == 2
    assert t.fetch_rows(None, ["id", "name", "pay"]) == [
        (1, "a", 10.0),
        (2, "b", 20.0),
    ]


def test_insert_row_case_insensitive_keys():
    t = make_table()
    t.insert_row({"ID": 1, "Name": "x", "PAY": 5.0})
    assert t.fetch_rows(None, ["name"]) == [("x",)]


def test_insert_missing_column_raises():
    t = make_table()
    with pytest.raises(StorageError):
        t.insert_rows([{"id": 1, "name": "a"}])


def test_insert_wrong_arity_raises():
    t = make_table()
    with pytest.raises(StorageError):
        t.insert_rows([{"id": 1, "name": "a", "pay": 1.0, "extra": 2}])


def test_insert_columns_bulk():
    t = make_table()
    t.insert_columns(
        {"id": np.arange(3), "name": ["x", "y", "z"], "pay": np.ones(3)}
    )
    assert t.row_count == 3


def test_insert_columns_mismatched_lengths():
    t = make_table()
    with pytest.raises(StorageError):
        t.insert_columns({"id": [1], "name": ["a", "b"], "pay": [1.0]})


def test_insert_columns_wrong_column_set():
    t = make_table()
    with pytest.raises(StorageError):
        t.insert_columns({"id": [1], "name": ["a"]})


def test_udi_counts_inserts_updates_deletes():
    t = make_table()
    t.insert_columns({"id": np.arange(10), "name": ["n"] * 10, "pay": np.ones(10)})
    assert t.udi_total == 10
    t.update_rows(np.array([0, 1, 2]), {"pay": 9.0})
    assert t.udi_total == 13
    t.delete_rows(np.array([0, 1]))
    assert t.udi_total == 15
    assert t.row_count == 8


def test_udi_since_snapshot():
    t = make_table()
    t.insert_row({"id": 1, "name": "a", "pay": 1.0})
    snapshot = t.udi_total
    t.update_rows(np.array([0]), {"pay": 2.0})
    assert t.udi_since(snapshot) == 1


def test_update_rows_sets_value():
    t = make_table()
    t.insert_columns({"id": np.arange(4), "name": ["a"] * 4, "pay": np.zeros(4)})
    t.update_rows(np.array([1, 3]), {"pay": 7.5, "name": "boss"})
    assert t.fetch_rows(np.array([1]), ["name", "pay"]) == [("boss", 7.5)]
    assert t.fetch_rows(np.array([0]), ["name", "pay"]) == [("a", 0.0)]


def test_apply_update_per_row_values():
    t = make_table()
    t.insert_columns({"id": np.arange(3), "name": ["a"] * 3, "pay": np.zeros(3)})
    t.apply_update(np.array([0, 2]), {"pay": np.array([1.5, 2.5])})
    pays = [r[0] for r in t.fetch_rows(None, ["pay"])]
    assert pays == [1.5, 0.0, 2.5]


def test_apply_update_length_mismatch():
    t = make_table()
    t.insert_row({"id": 1, "name": "a", "pay": 1.0})
    with pytest.raises(StorageError):
        t.apply_update(np.array([0]), {"pay": np.array([1.0, 2.0])})


def test_delete_rows_returns_count():
    t = make_table()
    t.insert_columns({"id": np.arange(5), "name": ["x"] * 5, "pay": np.ones(5)})
    assert t.delete_rows(np.array([1, 3])) == 2
    assert [r[0] for r in t.fetch_rows(None, ["id"])] == [0, 2, 4]


def test_delete_empty_is_noop():
    t = make_table()
    t.insert_row({"id": 1, "name": "a", "pay": 1.0})
    before = t.udi_total
    assert t.delete_rows(np.empty(0, dtype=np.int64)) == 0
    assert t.udi_total == before


def test_version_bumps_on_mutation():
    t = make_table()
    v0 = t.version
    t.insert_row({"id": 1, "name": "a", "pay": 1.0})
    assert t.version > v0


def test_unknown_column_raises():
    t = make_table()
    with pytest.raises(StorageError):
        t.column("ghost")
