"""Column storage: typed appends, growth, versioning, deletes."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import Column
from repro.types import DataType


def test_int_column_appends():
    c = Column("x", DataType.INT)
    c.extend([1, 2, 3])
    assert len(c) == 3
    assert c.data.tolist() == [1, 2, 3]
    assert c.data.dtype == np.int64


def test_float_column_accepts_ints():
    c = Column("x", DataType.FLOAT)
    c.extend([1, 2.5])
    assert c.data.tolist() == [1.0, 2.5]
    assert c.data.dtype == np.float64


def test_int_column_rejects_fractional_float():
    c = Column("x", DataType.INT)
    c.append(3.0)  # integral float is fine
    with pytest.raises(TypeError):
        c.append(3.5)


def test_type_validation_rejects_bool():
    c = Column("x", DataType.INT)
    with pytest.raises(TypeError):
        c.append(True)


def test_string_column_dictionary_encodes():
    c = Column("s", DataType.STRING)
    c.extend(["a", "b", "a"])
    assert c.data.tolist() == [0, 1, 0]
    assert c.logical_values() == ["a", "b", "a"]


def test_string_column_rejects_numbers():
    c = Column("s", DataType.STRING)
    with pytest.raises(TypeError):
        c.append(5)


def test_growth_beyond_initial_capacity():
    c = Column("x", DataType.INT)
    c.extend(list(range(1000)))
    assert len(c) == 1000
    assert c.data[-1] == 999


def test_lookup_value_does_not_mutate_dictionary():
    c = Column("s", DataType.STRING)
    c.append("present")
    assert c.lookup_value("absent") is None
    assert len(c.dictionary) == 1
    assert c.lookup_value("present") == 0


def test_set_at_overwrites_rows():
    c = Column("x", DataType.INT)
    c.extend([1, 2, 3, 4])
    c.set_at(np.array([1, 3]), 9)
    assert c.data.tolist() == [1, 9, 3, 9]


def test_set_physical_bumps_version():
    c = Column("x", DataType.FLOAT)
    c.extend([1.0, 2.0])
    before = c.version
    c.set_physical(np.array([0]), np.array([5.0]))
    assert c.version > before
    assert c.data.tolist() == [5.0, 2.0]


def test_delete_rows_compacts():
    c = Column("x", DataType.INT)
    c.extend([10, 20, 30, 40])
    keep = np.array([True, False, True, False])
    c.delete_rows(keep)
    assert c.data.tolist() == [10, 30]


def test_delete_rows_mask_length_mismatch():
    c = Column("x", DataType.INT)
    c.extend([1, 2])
    with pytest.raises(StorageError):
        c.delete_rows(np.array([True]))


def test_extend_physical_fast_path():
    c = Column("x", DataType.INT)
    c.extend_physical(np.arange(5))
    assert c.data.tolist() == [0, 1, 2, 3, 4]


def test_logical_values_subset():
    c = Column("s", DataType.STRING)
    c.extend(["p", "q", "r"])
    assert c.logical_values(np.array([2, 0])) == ["r", "p"]


def test_version_increments_on_mutations():
    c = Column("x", DataType.INT)
    versions = [c.version]
    c.append(1)
    versions.append(c.version)
    c.extend([2, 3])
    versions.append(c.version)
    c.set_at(np.array([0]), 7)
    versions.append(c.version)
    c.delete_rows(np.array([True, False, True]))
    versions.append(c.version)
    assert versions == sorted(set(versions))  # strictly increasing
