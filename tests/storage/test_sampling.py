"""Sampling: fixed-size and Bernoulli samples, extrapolation."""

import numpy as np

from repro import DataType, make_schema
from repro.storage import (
    SampleView,
    Table,
    bernoulli_sample,
    fixed_size_sample,
)


def make_table(n: int) -> Table:
    t = Table(make_schema("t", [("x", DataType.INT)]))
    t.insert_columns({"x": np.arange(n, dtype=np.int64)})
    return t


def test_fixed_size_small_table_returns_all():
    t = make_table(10)
    rows = fixed_size_sample(t, 100, np.random.default_rng(0))
    assert np.array_equal(rows, np.arange(10))


def test_fixed_size_large_table_returns_requested():
    t = make_table(100_000)
    rows = fixed_size_sample(t, 500, np.random.default_rng(0))
    assert len(rows) == 500
    assert rows.min() >= 0 and rows.max() < 100_000
    assert np.all(np.diff(rows) >= 0)  # sorted


def test_fixed_size_zero():
    t = make_table(10)
    assert len(fixed_size_sample(t, 0, np.random.default_rng(0))) == 0


def test_fixed_size_without_replacement_midrange():
    # 10 <= n < 10*size triggers the exact without-replacement path.
    t = make_table(50)
    rows = fixed_size_sample(t, 40, np.random.default_rng(0))
    assert len(rows) == 40
    assert len(np.unique(rows)) == 40


def test_fixed_size_fast_path_has_no_duplicates():
    # n >= 10*size triggers the with-replacement fast path; positions must
    # still be distinct (a duplicate would double-weight its row in masks).
    t = make_table(5_000)
    for seed in range(20):
        rows = fixed_size_sample(t, 500, np.random.default_rng(seed))
        assert len(rows) == 500
        assert len(np.unique(rows)) == 500
        assert np.all(np.diff(rows) > 0)  # sorted and strictly increasing


def test_fixed_size_fast_path_tops_up_after_collisions():
    # A tight 10x ratio makes birthday collisions near-certain; the top-up
    # loop must still deliver the full sample size.
    t = make_table(2_000)
    rows = fixed_size_sample(t, 200, np.random.default_rng(3))
    assert len(rows) == 200
    assert len(np.unique(rows)) == 200


def test_fixed_size_deterministic_with_seed():
    t = make_table(10_000)
    a = fixed_size_sample(t, 100, np.random.default_rng(42))
    b = fixed_size_sample(t, 100, np.random.default_rng(42))
    assert np.array_equal(a, b)


def test_bernoulli_rate_bounds():
    t = make_table(1000)
    assert len(bernoulli_sample(t, 0.0, np.random.default_rng(0))) == 0
    assert len(bernoulli_sample(t, 1.0, np.random.default_rng(0))) == 1000


def test_bernoulli_rate_expectation():
    t = make_table(20_000)
    rows = bernoulli_sample(t, 0.1, np.random.default_rng(0))
    assert 1_500 < len(rows) < 2_500


def test_sample_view_scale_and_estimates():
    t = make_table(10_000)
    rows = fixed_size_sample(t, 1_000, np.random.default_rng(1))
    view = SampleView(t, rows)
    assert view.scale == 10.0
    assert view.estimate_count(100) == 1_000.0
    assert view.estimate_selectivity(250) == 0.25


def test_sample_view_column_access():
    t = make_table(100)
    view = SampleView(t, np.array([0, 50, 99]))
    assert view.column_data("x").tolist() == [0, 50, 99]


def test_sample_selectivity_accuracy():
    # A 2000-row sample estimates a 30% predicate within a few points.
    t = make_table(50_000)
    rows = fixed_size_sample(t, 2_000, np.random.default_rng(5))
    view = SampleView(t, rows)
    matches = int((view.column_data("x") < 15_000).sum())
    assert abs(view.estimate_selectivity(matches) - 0.3) < 0.05
