"""Database: DDL surface and index registry."""

import pytest

from repro import Database, DataType, make_schema
from repro.errors import CatalogError


def schema(name="t"):
    return make_schema(name, [("id", DataType.INT)], primary_key="id")


def test_create_and_lookup():
    db = Database()
    table = db.create_table(schema())
    assert db.has_table("t")
    assert db.has_table("T")  # case-insensitive
    assert db.table("T") is table


def test_duplicate_table_raises():
    db = Database()
    db.create_table(schema())
    with pytest.raises(CatalogError):
        db.create_table(schema())


def test_drop_table():
    db = Database()
    db.create_table(schema())
    db.drop_table("t")
    assert not db.has_table("t")
    with pytest.raises(CatalogError):
        db.table("t")


def test_drop_missing_raises():
    db = Database()
    with pytest.raises(CatalogError):
        db.drop_table("ghost")


def test_primary_key_gets_hash_index():
    db = Database()
    db.create_table(schema())
    assert db.find_index_for_equality("t", "id") is not None


def test_create_indexes_idempotent():
    db = Database()
    db.create_table(schema())
    a = db.create_hash_index("t", "id")
    b = db.create_hash_index("t", "id")
    assert a is b


def test_index_on_unknown_column():
    db = Database()
    db.create_table(schema())
    with pytest.raises(Exception):
        db.create_hash_index("t", "nope")


def test_table_names_and_total_rows():
    db = Database()
    db.create_table(schema("a"))
    db.create_table(schema("b"))
    db.table("a").insert_row({"id": 1})
    assert sorted(db.table_names()) == ["a", "b"]
    assert db.total_rows() == 1


def test_schema_validation():
    with pytest.raises(CatalogError):
        make_schema("t", [])
    with pytest.raises(CatalogError):
        make_schema("t", [("a", DataType.INT), ("a", DataType.INT)])
    with pytest.raises(CatalogError):
        make_schema("t", [("a", DataType.INT)], primary_key="missing")
