"""run_all_settings and report aggregates on a tiny workload."""

import pytest

from repro.workload import (
    Setting,
    WorkloadOptions,
    build_car_database,
    generate_workload,
    run_all_settings,
    summarize_settings,
)


@pytest.fixture(scope="module")
def all_reports():
    _, profile = build_car_database(scale=0.001, seed=1)
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=25, seed=9)
    )
    return run_all_settings(workload, scale=0.001, data_seed=1)


def test_all_settings_present(all_reports):
    assert set(all_reports) == set(Setting)
    for setting, report in all_reports.items():
        assert report.setting == setting.value
        assert report.records


def test_summary_renders_all_settings(all_reports):
    text = summarize_settings(all_reports)
    for setting in Setting:
        assert setting.value in text
    assert "median" in text


def test_report_aggregates_consistent(all_reports):
    report = all_reports[Setting.GENERAL]
    selects = report.select_records()
    assert report.avg_total == pytest.approx(
        sum(r.total_time for r in selects) / len(selects)
    )
    assert report.avg_compile <= report.avg_total
    assert report.total_modeled_cost == pytest.approx(
        sum(report.select_modeled_costs())
    )


def test_empty_report_aggregates():
    from repro.workload.runner import WorkloadRunReport

    empty = WorkloadRunReport(setting="x")
    assert empty.avg_total == 0.0
    assert empty.avg_compile == 0.0
    assert empty.avg_execution == 0.0
    assert empty.elapsed == 0.0
    assert empty.select_totals() == []
