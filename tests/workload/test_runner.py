"""Workload runner + experiment settings (miniature end-to-end runs)."""

import pytest

from repro.workload import (
    Setting,
    WorkloadOptions,
    build_car_database,
    generate_workload,
    make_engine_for_setting,
    run_setting,
    run_workload,
)

SCALE = 0.002


@pytest.fixture(scope="module")
def tiny_workload():
    _, profile = build_car_database(scale=SCALE, seed=0)
    return generate_workload(profile, WorkloadOptions(n_statements=40, seed=2))


def test_engines_prepared_per_setting(tiny_workload):
    nostats = make_engine_for_setting(Setting.NOSTATS, scale=SCALE)
    assert nostats.catalog.table_stats("car") is None
    assert not nostats.config.jits.enabled

    general = make_engine_for_setting(Setting.GENERAL, scale=SCALE)
    assert general.catalog.table_stats("car") is not None
    assert general.catalog.groups_with_stats("car") == []

    workload = make_engine_for_setting(
        Setting.WORKLOAD, scale=SCALE, workload=tiny_workload
    )
    assert workload.catalog.table_stats("car") is not None
    assert workload.catalog.groups_with_stats("car")

    jits = make_engine_for_setting(Setting.JITS, scale=SCALE, s_max=0.3)
    assert jits.config.jits.enabled
    assert jits.config.jits.s_max == 0.3
    assert jits.catalog.table_stats("car") is None


def test_run_workload_records_everything(tiny_workload):
    engine = make_engine_for_setting(Setting.GENERAL, scale=SCALE)
    report = run_workload(engine, tiny_workload, "general")
    assert len(report.records) == len(tiny_workload)
    selects = report.select_records()
    assert len(selects) == len(tiny_workload.selects())
    assert all(r.total_time > 0 for r in selects)
    assert all(r.modeled_cost > 0 for r in selects)
    assert report.elapsed > 0
    assert report.avg_total >= report.avg_compile


def test_run_setting_reports_setup(tiny_workload):
    report = run_setting(
        Setting.WORKLOAD, tiny_workload, scale=SCALE, data_seed=0
    )
    assert report.setting == "workload"
    assert report.setup_seconds > 0
    assert report.total_modeled_cost > 0


def test_jits_setting_runs_clean(tiny_workload):
    report = run_setting(Setting.JITS, tiny_workload, scale=SCALE, data_seed=0)
    assert len(report.records) == len(tiny_workload)


def test_same_results_across_settings(tiny_workload):
    """Every setting must return identical answers for every query."""
    row_counts = {}
    for setting in (Setting.NOSTATS, Setting.GENERAL, Setting.JITS):
        engine = make_engine_for_setting(
            setting, scale=SCALE, workload=tiny_workload
        )
        report = run_workload(engine, tiny_workload, setting.value)
        row_counts[setting] = [r.rows for r in report.records]
    assert row_counts[Setting.NOSTATS] == row_counts[Setting.GENERAL]
    assert row_counts[Setting.NOSTATS] == row_counts[Setting.JITS]
