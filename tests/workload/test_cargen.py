"""Car database generator: sizes, keys, correlations."""

import numpy as np
import pytest

from repro.workload import PAPER_SIZES, build_car_database, scaled_sizes
from repro.workload.cargen import CITIES, MAKES_MODELS


@pytest.fixture(scope="module")
def cardb():
    return build_car_database(scale=0.004, seed=1)


def test_paper_table2_sizes():
    assert PAPER_SIZES == {
        "car": 1_430_798,
        "owner": 1_000_000,
        "demographics": 1_000_000,
        "accidents": 4_289_980,
    }


def test_scaled_sizes_proportional(cardb):
    db, profile = cardb
    sizes = scaled_sizes(0.004)
    for name, expected in sizes.items():
        assert db.table(name).row_count == expected
        assert abs(expected - PAPER_SIZES[name] * 0.004) <= 1


def test_scaled_sizes_floor():
    assert min(scaled_sizes(1e-9).values()) >= 20


def test_primary_keys_unique(cardb):
    db, _ = cardb
    for name in db.table_names():
        ids = db.table(name).column_data("id")
        assert len(np.unique(ids)) == len(ids)


def test_foreign_keys_valid(cardb):
    db, _ = cardb
    n_owner = db.table("owner").row_count
    n_car = db.table("car").row_count
    assert db.table("car").column_data("ownerid").max() < n_owner
    assert db.table("demographics").column_data("ownerid").max() < n_owner
    assert db.table("accidents").column_data("carid").max() < n_car


def test_make_model_functional_dependency(cardb):
    """Every model belongs to exactly the advertised make — the paper's
    Make <-> Model correlation."""
    db, _ = cardb
    car = db.table("car")
    makes = car.column("make").logical_values()
    models = car.column("model").logical_values()
    for make, model in zip(makes, models):
        assert model in MAKES_MODELS[make]


def test_city_country_functional_dependency(cardb):
    db, _ = cardb
    demo = db.table("demographics")
    cities = demo.column("city").logical_values()
    countries = demo.column("country").logical_values()
    for city, country in zip(cities, countries):
        assert CITIES[city][0] == country


def test_salary_correlates_with_city(cardb):
    db, _ = cardb
    demo = db.table("demographics")
    cities = np.array(demo.column("city").logical_values())
    salary = demo.column_data("salary")
    rich = salary[cities == "NewYork"].mean()
    poor = salary[cities == "Montreal"].mean()
    assert rich > poor


def test_severity_damage_correlation(cardb):
    db, _ = cardb
    acc = db.table("accidents")
    severity = acc.column_data("severity")
    damage = acc.column_data("damage")
    assert damage[severity >= 4].mean() > 2 * damage[severity <= 2].mean()


def test_price_correlates_with_make(cardb):
    db, _ = cardb
    car = db.table("car")
    makes = np.array(car.column("make").logical_values())
    price = car.column_data("price")
    if (makes == "BMW").sum() and (makes == "Hyundai").sum():
        assert price[makes == "BMW"].mean() > price[makes == "Hyundai"].mean()


def test_indexes_created(cardb):
    db, _ = cardb
    assert db.indexes("car").hash_on("ownerid") is not None
    assert db.indexes("accidents").hash_on("carid") is not None
    assert db.indexes("demographics").sorted_on("salary") is not None


def test_deterministic_for_seed():
    db1, _ = build_car_database(scale=0.001, seed=9)
    db2, _ = build_car_database(scale=0.001, seed=9)
    assert np.array_equal(
        db1.table("car").column_data("price"), db2.table("car").column_data("price")
    )
    db3, _ = build_car_database(scale=0.001, seed=10)
    assert not np.array_equal(
        db1.table("car").column_data("price"), db3.table("car").column_data("price")
    )


def test_profile_metadata(cardb):
    _, profile = cardb
    assert profile.scale == 0.004
    assert "Toyota" in profile.makes
    assert "Camry" in profile.models_by_make["Toyota"]
    assert profile.country_of_city["Ottawa"] == "CA"
