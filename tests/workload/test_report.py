"""Reporting helpers: five-number summaries, scatter splits, tables."""

import pytest

from repro.workload import BoxStats, ScatterSplit, ascii_box_plot, format_table


def test_box_stats_basic():
    stats = BoxStats.of([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats.minimum == 1.0
    assert stats.median == 3.0
    assert stats.maximum == 5.0
    assert stats.q1 == 2.0
    assert stats.q3 == 4.0


def test_box_stats_empty():
    stats = BoxStats.of([])
    assert stats.row() == (0, 0, 0, 0, 0)


def test_box_stats_row_scaling():
    stats = BoxStats.of([0.5])
    assert stats.row(unit=1000.0) == (500, 500, 500, 500, 500)


def test_scatter_split_counts():
    baseline = [1.0, 1.0, 1.0, 1.0]
    candidate = [0.5, 2.0, 1.0, 0.9]
    split = ScatterSplit.of(candidate, baseline)
    assert split.improved == 2  # 0.5 and 0.9
    assert split.degraded == 1  # 2.0
    assert split.unchanged == 1
    assert split.improvement_fraction == pytest.approx(0.5)


def test_scatter_split_totals_and_ratio():
    split = ScatterSplit.of([1.0, 1.0], [2.0, 2.0])
    assert split.total_candidate == 2.0
    assert split.total_baseline == 4.0
    assert split.mean_ratio == pytest.approx(0.5)


def test_scatter_split_length_mismatch():
    with pytest.raises(ValueError):
        ScatterSplit.of([1.0], [1.0, 2.0])


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "value" in lines[0]
    assert all(len(line) == len(lines[0]) for line in lines[1:])


def test_ascii_box_plot_renders():
    stats = [BoxStats.of([1, 2, 3]), BoxStats.of([2, 4, 8])]
    art = ascii_box_plot(["fast", "slow"], stats, width=40)
    assert "fast" in art and "slow" in art
    assert "|" in art  # median markers
