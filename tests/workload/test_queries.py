"""Workload generator: shape, determinism, executability."""

import pytest

from repro.sql import ast, parse
from repro.workload import (
    WorkloadOptions,
    build_car_database,
    generate_workload,
)


@pytest.fixture(scope="module")
def profile():
    _, profile = build_car_database(scale=0.002, seed=0)
    return profile


def test_default_statement_count(profile):
    workload = generate_workload(profile)
    assert len(workload) == 840  # the paper's workload size


def test_mix_has_selects_and_dml(profile):
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=400, seed=1)
    )
    kinds = set(workload.kinds)
    assert "select" in kinds
    assert {"update", "insert", "delete"} & kinds
    n_select = len(workload.selects())
    assert 0.7 < n_select / len(workload) < 0.95


def test_every_statement_parses(profile):
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=300, seed=2)
    )
    for sql in workload.statements:
        parse(sql)


def test_deterministic_by_seed(profile):
    a = generate_workload(profile, WorkloadOptions(n_statements=50, seed=5))
    b = generate_workload(profile, WorkloadOptions(n_statements=50, seed=5))
    c = generate_workload(profile, WorkloadOptions(n_statements=50, seed=6))
    assert a.statements == b.statements
    assert a.statements != c.statements


def test_consistent_pairs_fraction(profile):
    from repro.workload.cargen import MAKES_MODELS

    workload = generate_workload(
        profile,
        WorkloadOptions(n_statements=600, seed=3, consistent_pair_fraction=1.0),
    )
    for sql in workload.selects():
        if "c.make = '" in sql and "c.model = '" in sql:
            make = sql.split("c.make = '")[1].split("'")[0]
            model = sql.split("c.model = '")[1].split("'")[0]
            assert model in MAKES_MODELS[make]


def test_inconsistent_pairs_occur(profile):
    from repro.workload.cargen import MAKES_MODELS

    workload = generate_workload(
        profile,
        WorkloadOptions(n_statements=600, seed=3, consistent_pair_fraction=0.0),
    )
    mismatches = 0
    for sql in workload.selects():
        if "c.make = '" in sql and "c.model = '" in sql:
            make = sql.split("c.make = '")[1].split("'")[0]
            model = sql.split("c.model = '")[1].split("'")[0]
            if model not in MAKES_MODELS[make]:
                mismatches += 1
    assert mismatches > 0


def test_insert_ids_monotone(profile):
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=500, seed=4, dml_fraction=0.5)
    )
    seen = []
    for sql, kind in zip(workload.statements, workload.kinds):
        if kind == "insert" and "INTO accidents" in sql:
            stmt = parse(sql)
            assert isinstance(stmt, ast.InsertStatement)
            seen.extend(row[0].value for row in stmt.rows)
    assert seen == sorted(seen)
    assert len(seen) == len(set(seen))


def test_paper_query_template_present(profile):
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=400, seed=7)
    )
    four_way = [
        s
        for s in workload.selects()
        if "car c, accidents a, demographics d, owner o" in s
    ]
    assert four_way  # the Section 4.1 query shape appears
