"""Statistics migration: archive -> catalog."""

import numpy as np
import pytest

from repro.catalog import SystemCatalog, run_runstats
from repro.histograms import Interval, Region
from repro.jits import QSSArchive, migrate_archive_to_catalog


def test_single_column_creates_column_stats(mini_db):
    archive = QSSArchive(mini_db)
    catalog = SystemCatalog()
    archive.observe(
        "car", ["year"], Region.of(Interval(2000, 2004)), 150,
        mini_db.table("car").row_count, now=1,
    )
    migrated = migrate_archive_to_catalog(archive, catalog, mini_db, now=9)
    assert migrated == 1
    stats = catalog.column_stats("car", "year")
    assert stats is not None
    assert stats.collected_at == 9
    assert stats.histogram is not None
    assert stats.histogram.estimate_count(
        Interval(2000, 2004)
    ) == pytest.approx(150, rel=0.05)


def test_single_column_updates_existing_stats(mini_db, mini_catalog):
    archive = QSSArchive(mini_db)
    before = mini_catalog.column_stats("car", "year")
    ndv_before = before.n_distinct
    archive.observe(
        "car", ["year"], Region.of(Interval(2000, 2002)), 80,
        mini_db.table("car").row_count, now=2,
    )
    migrate_archive_to_catalog(archive, mini_catalog, mini_db, now=5)
    after = mini_catalog.column_stats("car", "year")
    assert after.collected_at == 5
    assert after.n_distinct == ndv_before  # NDV preserved, histogram replaced
    assert after.histogram.boundary_list()[0] == pytest.approx(
        archive.lookup("car", ["year"]).boundary_list(0)[0]
    )


def test_multi_column_publishes_group_stats(mini_db):
    archive = QSSArchive(mini_db)
    catalog = SystemCatalog()
    code = mini_db.table("car").column("make").lookup_value("Toyota")
    region = Region.of(
        Interval(float(code), float(code) + 1), Interval(2000, 2003)
    )
    archive.observe(
        "car", ["make", "year"], region, 42,
        mini_db.table("car").row_count, now=1,
    )
    migrated = migrate_archive_to_catalog(archive, catalog, mini_db, now=3)
    assert migrated == 1
    group = catalog.group_stats("car", ["make", "year"])
    assert group is not None
    assert group.histogram.estimate_count(region) == pytest.approx(42, rel=0.05)


def test_migrated_group_is_a_snapshot(mini_db):
    """Later archive updates must not leak into the published catalog."""
    archive = QSSArchive(mini_db)
    catalog = SystemCatalog()
    region = Region.of(Interval(0, 2), Interval(2000, 2003))
    archive.observe(
        "car", ["make", "year"], region, 42,
        mini_db.table("car").row_count, now=1,
    )
    migrate_archive_to_catalog(archive, catalog, mini_db, now=2)
    published = catalog.group_stats("car", ["make", "year"])
    before = published.histogram.estimate_count(region)
    archive.observe("car", ["make", "year"], region, 400, None, now=3)
    after = published.histogram.estimate_count(region)
    assert before == after


def test_empty_archive_migrates_nothing(mini_db):
    assert (
        migrate_archive_to_catalog(
            QSSArchive(mini_db), SystemCatalog(), mini_db, now=1
        )
        == 0
    )
