"""QSS archive: materialization, reuse, space budget, eviction."""

import pytest

from repro.histograms import Interval, Region
from repro.jits import QSSArchive


def obs_region(lo, hi):
    return Region.of(Interval(float(lo), float(hi)))


def test_observe_creates_and_lookup(mini_db):
    archive = QSSArchive(mini_db)
    assert archive.lookup("car", ["year"]) is None
    archive.observe("car", ["year"], obs_region(2000, 2004), 100, 600, now=1)
    hist = archive.lookup("car", ["year"])
    assert hist is not None
    assert hist.estimate_count(obs_region(2000, 2004)) == pytest.approx(
        100, rel=0.02
    )


def test_keys_canonical(mini_db):
    archive = QSSArchive(mini_db)
    region = Region.of(Interval(0, 1), Interval(2000, 2005))
    archive.observe("CAR", ["make", "year"], region, 10, 600, now=1)
    assert archive.has("car", ["year", "make"])
    assert archive.lookup("car", ("make", "year")) is not None


def test_mark_used_updates_lru(mini_db):
    archive = QSSArchive(mini_db)
    archive.observe("car", ["year"], obs_region(2000, 2001), 5, 600, now=1)
    archive.mark_used("car", ["year"], now=9)
    assert archive.lookup("car", ["year"]).last_used == 9


def test_space_budget_eviction(mini_db):
    archive = QSSArchive(mini_db, cell_budget=4)
    archive.observe("car", ["year"], obs_region(2000, 2002), 50, 600, now=1)
    archive.observe("car", ["price"], obs_region(0, 100), 10, 600, now=2)
    archive.observe("owner", ["salary"], obs_region(0, 1000), 20, 200, now=3)
    assert archive.total_cells <= 4 or len(archive) == 1
    assert archive.evictions >= 1
    # The protected (just-observed) histogram survives.
    assert archive.has("owner", ["salary"])


def test_eviction_prefers_uniform_histograms(mini_db):
    archive = QSSArchive(mini_db, cell_budget=10_000)
    # A heavily skewed histogram (informative) and a uniform one (matching
    # the optimizer's default assumption, so safe to drop).
    archive.observe("car", ["year"], obs_region(1995, 1996), 590, 600, now=1)
    archive.observe("car", ["price"], obs_region(0, 25000), 300, 600, now=2)
    # Leave room for the incoming histogram but force exactly one eviction.
    archive.cell_budget = archive.total_cells + 2
    archive.observe("owner", ["salary"], obs_region(2000, 3000), 20, 200, now=3)
    assert archive.has("car", ["year"])  # skewed one survives
    assert not archive.has("car", ["price"])  # uniform one evicted
    assert archive.evictions == 1


def test_drop_table(mini_db):
    archive = QSSArchive(mini_db)
    archive.observe("car", ["year"], obs_region(2000, 2001), 5, 600, now=1)
    archive.observe("car", ["price"], obs_region(0, 10), 5, 600, now=1)
    archive.observe("owner", ["salary"], obs_region(0, 10), 5, 200, now=1)
    assert archive.drop_table("car") == 2
    assert len(archive) == 1


def test_drop_single(mini_db):
    archive = QSSArchive(mini_db)
    archive.observe("car", ["year"], obs_region(2000, 2001), 5, 600, now=1)
    assert archive.drop("car", ["year"])
    assert not archive.drop("car", ["year"])


def test_multi_dim_histogram_domain_from_table(mini_db):
    archive = QSSArchive(mini_db)
    make_code = mini_db.table("car").column("make").lookup_value("Toyota")
    region = Region.of(
        Interval(float(make_code), float(make_code) + 1),
        Interval(2000, 2005),
    )
    hist = archive.observe("car", ["make", "year"], region, 30, 600, now=1)
    assert hist.ndim == 2
    # Domain covers all observed data.
    year_domain = hist.domain.intervals[1]
    years = mini_db.table("car").column_data("year")
    assert year_domain.low <= years.min()
    assert year_domain.high > years.max()
