"""Sensitivity analysis — paper Algorithms 2, 3 and 4."""

import numpy as np
import pytest

from repro.catalog import SystemCatalog, run_runstats
from repro.jits import QSSArchive, SensitivityAnalyzer, StatHistory
from repro.histograms import Interval, Region
from repro.predicates import LocalPredicate, PredOp, PredicateGroup


def pred(column, op=PredOp.EQ, values=("Toyota",), alias="c"):
    return LocalPredicate(alias, column, op, values)


def make_analyzer(db, s_max=0.5, catalog=None, history=None, archive=None,
                  last_udi=None):
    return SensitivityAnalyzer(
        database=db,
        catalog=catalog if catalog is not None else SystemCatalog(),
        archive=archive if archive is not None else QSSArchive(db),
        history=history if history is not None else StatHistory(),
        s_max=s_max,
        last_collection_udi=last_udi if last_udi is not None else {},
    )


def car_groups():
    g_full = PredicateGroup.of(
        pred("make"), pred("model", values=("Camry",))
    )
    return [PredicateGroup.of(pred("make")), g_full]


def test_no_history_means_collect(mini_db):
    analyzer = make_analyzer(mini_db, s_max=0.5)
    decision = analyzer.should_collect("car", car_groups())
    assert decision.s1 == pytest.approx(1.0)
    assert decision.collect


def test_smax_zero_always_collects_and_materializes(mini_db):
    analyzer = make_analyzer(mini_db, s_max=0.0)
    decisions = analyzer.analyze({"car": car_groups()})
    assert decisions["car"].collect
    assert len(decisions["car"].materialize) == len(car_groups())


def test_smax_one_never_collects(mini_db):
    analyzer = make_analyzer(mini_db, s_max=1.0)
    decision = analyzer.should_collect("car", car_groups())
    assert not decision.collect
    assert decision.score > 0  # score computed, threshold sentinel applies


def test_good_history_plus_fresh_archive_suppresses_collection(mini_db):
    """After an accurate collection, s1 drops and the table is skipped."""
    history = StatHistory()
    archive = QSSArchive(mini_db)
    table = mini_db.table("car")
    groups = car_groups()
    full = groups[1]
    # Archive holds a histogram on (make, model) with boundaries exactly at
    # the queried values; the history says estimates from it were perfect.
    from repro.predicates import group_region

    columns, region = group_region(table, full)
    archive.observe("car", columns, region, 60, table.row_count, now=1)
    history.record("car", columns, [columns], 1.0)
    analyzer = make_analyzer(
        mini_db,
        s_max=0.5,
        history=history,
        archive=archive,
        last_udi={"car": table.udi_total},
    )
    decision = analyzer.should_collect("car", groups)
    assert decision.s1 < 0.2
    assert decision.s2 == 0.0
    assert not decision.collect


def test_bad_errorfactor_raises_s1(mini_db):
    history = StatHistory()
    history.record("car", ["make", "model"], [["make"], ["model"]], 0.1)
    analyzer = make_analyzer(mini_db, s_max=0.5, history=history)
    decision = analyzer.should_collect("car", car_groups())
    # even if stat accuracy were 1, ef 0.1 caps accuracy at 0.1
    assert decision.s1 >= 0.9
    assert decision.collect


def test_udi_churn_drives_s2(mini_db):
    table = mini_db.table("car")
    history = StatHistory()
    # Perfect history so s1 ~ contribution is low... use empty history but
    # measure s2 directly: snapshot far in the past.
    analyzer = make_analyzer(
        mini_db, s_max=0.99, history=history, last_udi={"car": 0}
    )
    decision = analyzer.should_collect("car", car_groups())
    # udi_total equals row_count after the initial load -> s2 == 1.
    assert decision.s2 == pytest.approx(1.0)


def test_s2_zero_right_after_collection(mini_db):
    table = mini_db.table("car")
    analyzer = make_analyzer(
        mini_db, s_max=0.5, last_udi={"car": table.udi_total}
    )
    decision = analyzer.should_collect("car", car_groups())
    assert decision.s2 == 0.0


def test_score_is_mean_of_s1_s2(mini_db):
    table = mini_db.table("car")
    analyzer = make_analyzer(
        mini_db, s_max=0.5, last_udi={"car": table.udi_total}
    )
    decision = analyzer.should_collect("car", car_groups())
    assert decision.score == pytest.approx((decision.s1 + decision.s2) / 2)


# ----------------------------------------------------------------------
# Algorithm 4: ShouldMaterialize
# ----------------------------------------------------------------------
def test_materialize_when_histogram_exists(mini_db):
    archive = QSSArchive(mini_db)
    archive.observe(
        "car", ["year"], Region.of(Interval(2000, 2001)), 10,
        mini_db.table("car").row_count, now=1,
    )
    analyzer = make_analyzer(mini_db, s_max=0.9, archive=archive)
    group = PredicateGroup.of(pred("year", PredOp.EQ, (2000,)))
    assert analyzer.should_materialize("car", group)


def test_materialize_never_used_stat_rejected(mini_db):
    analyzer = make_analyzer(mini_db, s_max=0.5)
    group = PredicateGroup.of(pred("year", PredOp.EQ, (2000,)))
    assert not analyzer.should_materialize("car", group)


def test_materialize_weighted_average_of_errorfactor(mini_db):
    history = StatHistory()
    # (make, model) used twice with ef 0.9 (helpful) -> score 0.9.
    history.record("car", ["make", "model"], [["make", "model"]], 0.9)
    history.record("car", ["make", "model"], [["make", "model"]], 0.9)
    analyzer = make_analyzer(mini_db, s_max=0.5, history=history)
    group = PredicateGroup.of(pred("make"), pred("model", values=("Camry",)))
    assert analyzer.should_materialize("car", group)

    bad_history = StatHistory()
    bad_history.record("car", ["make", "model"], [["make", "model"]], 0.05)
    analyzer = make_analyzer(mini_db, s_max=0.5, history=bad_history)
    assert not analyzer.should_materialize("car", group)


# ----------------------------------------------------------------------
# Section 3.3.2 stat accuracy plumbing
# ----------------------------------------------------------------------
def test_stat_accuracy_from_catalog_histogram(mini_db, mini_catalog):
    analyzer = make_analyzer(mini_db, catalog=mini_catalog)
    group = PredicateGroup.of(pred("year", PredOp.GT, (2000,)))
    acc = analyzer.stat_accuracy("car", ["year"], group)
    assert 0.0 < acc <= 1.0


def test_stat_accuracy_missing_stats_zero(mini_db):
    analyzer = make_analyzer(mini_db)
    group = PredicateGroup.of(pred("year", PredOp.GT, (2000,)))
    assert analyzer.stat_accuracy("car", ["year"], group) == 0.0


def test_stat_accuracy_irrelevant_stat_is_one(mini_db, mini_catalog):
    analyzer = make_analyzer(mini_db, catalog=mini_catalog)
    group = PredicateGroup.of(pred("year", PredOp.GT, (2000,)))
    assert analyzer.stat_accuracy("car", ["price"], group) == 1.0


def test_stat_accuracy_unrepresentable_zero(mini_db, mini_catalog):
    analyzer = make_analyzer(mini_db, catalog=mini_catalog)
    group = PredicateGroup.of(pred("year", PredOp.NE, (2000,)))
    assert analyzer.stat_accuracy("car", ["year"], group) == 0.0


def test_stat_accuracy_from_archive_boundaries(mini_db):
    archive = QSSArchive(mini_db)
    archive.observe(
        "car", ["year"], Region.of(Interval(2000, 2003)), 50,
        mini_db.table("car").row_count, now=1,
    )
    analyzer = make_analyzer(mini_db, archive=archive)
    aligned = PredicateGroup.of(pred("year", PredOp.BETWEEN, (2000, 2002)))
    acc = analyzer.stat_accuracy("car", ["year"], aligned)
    assert acc == pytest.approx(1.0)  # endpoints 2000/2003 are boundaries
