"""Deferred, batched max-entropy recalibration of the QSS archive."""

import numpy as np
import pytest

from repro.histograms import Interval, Region
from repro.jits import QSSArchive


def obs_region(lo, hi):
    return Region.of(Interval(float(lo), float(hi)))


OBSERVATIONS = [
    (obs_region(1996, 2000), 120.0, 600.0, 1),
    (obs_region(1999, 2003), 260.0, 600.0, 2),
    (obs_region(2001, 2006), 300.0, 600.0, 3),
    (obs_region(1995, 1997), 40.0, 600.0, 4),
]


def test_observe_defers_and_batch_flushes(mini_db):
    archive = QSSArchive(mini_db, deferred_calibration=True)
    for region, count, total, now in OBSERVATIONS:
        hist = archive.observe("car", ["year"], region, count, total, now=now)
        assert hist.dirty
    assert archive.recalibrate_dirty() == 1  # one dirty histogram, one pass
    assert not archive.lookup("car", ["year"]).dirty
    assert archive.recalibrate_dirty() == 0  # nothing left to flush


def test_lookup_lazily_recalibrates(mini_db):
    archive = QSSArchive(mini_db, deferred_calibration=True)
    region, count, total, now = OBSERVATIONS[0]
    archive.observe("car", ["year"], region, count, total, now=now)
    hist = archive.lookup("car", ["year"])
    # Readers never see uncalibrated counts, even before a batch boundary.
    assert not hist.dirty
    assert archive.deferred_recalibrations == 1
    assert hist.estimate_count(region) == pytest.approx(count, rel=0.02)


def test_batched_matches_eager_calibration(mini_db):
    # Same observation stream through both modes: the batched pass lands
    # on the same grid and constraint set, so every constraint region's
    # count must agree within the IPF solver's own tolerance band (the
    # fixed point depends mildly on the starting measure, nothing more).
    eager = QSSArchive(mini_db, deferred_calibration=False)
    deferred = QSSArchive(mini_db, deferred_calibration=True)
    for region, count, total, now in OBSERVATIONS:
        eager.observe("car", ["year"], region, count, total, now=now)
        deferred.observe("car", ["year"], region, count, total, now=now)
    deferred.recalibrate_dirty()
    a = eager.lookup("car", ["year"])
    b = deferred.lookup("car", ["year"])
    assert a.n_cells == b.n_cells
    assert b.total_mass == pytest.approx(a.total_mass, rel=1e-2)
    for region, _, _, _ in OBSERVATIONS:
        assert b.estimate_count(region) == pytest.approx(
            a.estimate_count(region), rel=1e-2
        )


def test_eviction_and_drop_clear_dirty_keys(mini_db):
    archive = QSSArchive(mini_db, deferred_calibration=True)
    archive.observe("car", ["year"], obs_region(2000, 2002), 50, 600, now=1)
    archive.observe("owner", ["salary"], obs_region(0, 1000), 20, 200, now=2)
    archive.drop_table("car")
    assert archive.recalibrate_dirty() == 1  # only owner.salary remains


def test_version_bumps_on_every_observe(mini_db):
    archive = QSSArchive(mini_db)
    assert archive.version == 0
    archive.observe("car", ["year"], obs_region(2000, 2002), 50, 600, now=1)
    archive.observe("car", ["year"], obs_region(2001, 2003), 60, 600, now=2)
    assert archive.version == 2
