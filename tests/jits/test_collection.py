"""Statistics collection: sampled selectivities and materialization."""

import numpy as np
import pytest

from repro.jits import QSSArchive, StatisticsCollector, TableDecision
from repro.jits.sensitivity import TableDecision  # noqa: F811
from repro.predicates import (
    LocalPredicate,
    PredOp,
    PredicateGroup,
    count_matches,
    group_region,
)


def pred(column, op, *values):
    return LocalPredicate("c", column, op, values)


def collect(db, groups, materialize=(), sample_size=400, table="car"):
    archive = QSSArchive(db)
    collector = StatisticsCollector(
        db, archive, sample_size, np.random.default_rng(3)
    )
    decision = TableDecision(
        table=table, collect=True, score=1.0, s1=1.0, s2=1.0,
        materialize=list(materialize),
    )
    last = {}
    profile, report = collector.collect(
        {table: decision}, {table: groups}, now=5, last_collection_udi=last
    )
    return profile, report, archive, last


def test_profile_has_all_groups(mini_db):
    groups = [
        PredicateGroup.of(pred("make", PredOp.EQ, "Toyota")),
        PredicateGroup.of(pred("year", PredOp.GT, 2000)),
        PredicateGroup.of(
            pred("make", PredOp.EQ, "Toyota"), pred("year", PredOp.GT, 2000)
        ),
    ]
    profile, report, _, _ = collect(mini_db, groups)
    assert report.groups_computed == 3
    assert profile.n_groups == 3
    for group in groups:
        assert profile.selectivity("car", group) is not None


def test_sampled_selectivity_close_to_truth(mini_db):
    table = mini_db.table("car")
    group = PredicateGroup.of(
        pred("make", PredOp.EQ, "Toyota"), pred("model", PredOp.EQ, "Camry")
    )
    profile, _, _, _ = collect(mini_db, [group], sample_size=600)
    actual = count_matches(table, group.predicates) / table.row_count
    assert profile.selectivity("car", group) == pytest.approx(actual, abs=0.05)


def test_full_table_sample_is_exact(mini_db):
    table = mini_db.table("car")
    group = PredicateGroup.of(pred("year", PredOp.LE, 2000))
    profile, _, _, _ = collect(mini_db, [group], sample_size=10**6)
    actual = count_matches(table, group.predicates) / table.row_count
    assert profile.selectivity("car", group) == pytest.approx(actual)


def test_cardinality_recorded(mini_db):
    group = PredicateGroup.of(pred("make", PredOp.EQ, "Toyota"))
    profile, _, _, _ = collect(mini_db, [group])
    assert profile.cardinality("car") == mini_db.table("car").row_count


def test_udi_snapshot_updated(mini_db):
    group = PredicateGroup.of(pred("make", PredOp.EQ, "Toyota"))
    _, _, _, last = collect(mini_db, [group])
    assert last["car"] == mini_db.table("car").udi_total


def test_materialization_creates_archive_histograms(mini_db):
    single = PredicateGroup.of(pred("year", PredOp.GT, 2000))
    joint = PredicateGroup.of(
        pred("make", PredOp.EQ, "Toyota"), pred("year", PredOp.GT, 2000)
    )
    _, report, archive, _ = collect(
        mini_db, [single, joint], materialize=[single, joint]
    )
    assert report.groups_materialized == 2
    assert archive.has("car", ["year"])
    assert archive.has("car", ["make", "year"])


def test_materialized_joint_includes_marginal_constraints(mini_db):
    """The Figure 2 behaviour: the same sample feeds the marginals into
    the joint histogram too."""
    table = mini_db.table("car")
    single = PredicateGroup.of(pred("year", PredOp.GT, 2000))
    joint = PredicateGroup.of(
        pred("make", PredOp.EQ, "Toyota"), pred("year", PredOp.GT, 2000)
    )
    _, _, archive, _ = collect(
        mini_db, [single, joint], materialize=[joint], sample_size=10**6
    )
    hist = archive.lookup("car", ("make", "year"))
    assert hist is not None
    # The marginal (year > 2000 over all makes) is itself a constraint.
    assert len(hist.constraints) >= 3  # total + joint + marginal


def test_unrepresentable_groups_not_materialized(mini_db):
    ne_group = PredicateGroup.of(pred("year", PredOp.NE, 2000))
    profile, report, archive, _ = collect(
        mini_db, [ne_group], materialize=[ne_group]
    )
    assert report.groups_materialized == 0
    assert len(archive) == 0
    # But its exact selectivity is still in the profile for this query.
    assert profile.selectivity("car", ne_group) is not None


def test_skipped_tables_not_sampled(mini_db):
    archive = QSSArchive(mini_db)
    collector = StatisticsCollector(mini_db, archive, 100, np.random.default_rng(0))
    decision = TableDecision(
        table="car", collect=False, score=0.0, s1=0.0, s2=0.0
    )
    group = PredicateGroup.of(pred("make", PredOp.EQ, "Toyota"))
    profile, report = collector.collect(
        {"car": decision}, {"car": [group]}, now=1
    )
    assert report.tables_sampled == []
    assert profile.n_groups == 0
