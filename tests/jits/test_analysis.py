"""Query analysis — paper Algorithm 1."""

from repro.jits import analyze_query, enumerate_groups, merge_by_table
from repro.jits.analysis import MAX_FULL_ENUMERATION
from repro.predicates import LocalPredicate, PredOp
from repro.sql import build_query_graph, parse_select


def preds(n, alias="c"):
    return [
        LocalPredicate(alias, f"col{i}", PredOp.EQ, (i,)) for i in range(n)
    ]


def test_paper_example_three_predicates():
    """make='Toyota' AND model='Corolla' AND year>2000: the first loop
    iteration produces 3 singletons, the second 3 pairs, the last the full
    triple — 7 groups."""
    groups = enumerate_groups(preds(3))
    by_size = {}
    for g in groups:
        by_size.setdefault(g.size, []).append(g)
    assert len(by_size[1]) == 3
    assert len(by_size[2]) == 3
    assert len(by_size[3]) == 1
    assert len(groups) == 7


def test_enumeration_counts():
    assert len(enumerate_groups(preds(1))) == 1
    assert len(enumerate_groups(preds(2))) == 3
    assert len(enumerate_groups(preds(4))) == 15
    assert enumerate_groups([]) == []


def test_enumeration_capped_for_many_predicates():
    m = MAX_FULL_ENUMERATION + 3
    groups = enumerate_groups(preds(m))
    # singletons + pairs + the full group, not 2^m - 1.
    assert len(groups) == m + m * (m - 1) // 2 + 1


def test_duplicate_predicates_collapse():
    p = LocalPredicate("c", "a", PredOp.EQ, (1,))
    groups = enumerate_groups([p, p])
    assert len(groups) == 1


def test_analyze_query_per_block(mini_db):
    block = build_query_graph(
        parse_select(
            "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id "
            "AND c.make = 'Toyota' AND c.year > 2000 AND o.salary > 100"
        ),
        mini_db,
    )
    candidates = analyze_query(block)
    by_table = {c.table: c for c in candidates}
    assert set(by_table) == {"car", "owner"}
    assert len(by_table["car"].groups) == 3  # 2 singletons + pair
    assert len(by_table["owner"].groups) == 1
    assert by_table["car"].full_group.size == 2


def test_analyze_query_skips_predicate_free_tables(mini_db):
    block = build_query_graph(
        parse_select(
            "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id "
            "AND c.make = 'Honda'"
        ),
        mini_db,
    )
    candidates = analyze_query(block)
    assert [c.table for c in candidates] == ["car"]


def test_analyze_query_walks_child_blocks(mini_db):
    block = build_query_graph(
        parse_select(
            "SELECT v.n FROM (SELECT city, COUNT(*) AS n FROM owner "
            "WHERE salary > 10 GROUP BY city) v WHERE v.n > 1"
        ),
        mini_db,
    )
    candidates = analyze_query(block)
    # The derived quantifier has no base table; the child block's owner
    # predicate is analyzed.
    assert [c.table for c in candidates] == ["owner"]


def test_merge_by_table_deduplicates_self_joins(mini_db):
    block = build_query_graph(
        parse_select(
            "SELECT a.id FROM car a, car b WHERE a.id = b.id "
            "AND a.make = 'Ford' AND b.make = 'Ford'"
        ),
        mini_db,
    )
    merged = merge_by_table(analyze_query(block))
    # Aliases differ so groups remain distinct per quantifier, but both
    # fold into the same table bucket.
    assert set(merged) == {"car"}
    assert len(merged["car"]) == 2
