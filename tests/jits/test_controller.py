"""The JITS controller end to end (compile hook, feedback, migration)."""

import numpy as np
import pytest

from repro.catalog import SystemCatalog
from repro.executor.feedback import FeedbackRecord
from repro.jits import JITSConfig, JustInTimeStatistics
from repro.predicates import LocalPredicate, PredOp, PredicateGroup
from repro.sql import build_query_graph, parse_select

SQL = (
    "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id "
    "AND c.make = 'Toyota' AND c.model = 'Camry'"
)


def make_jits(db, **kwargs):
    config = JITSConfig(enabled=True, sample_size=300, **kwargs)
    return JustInTimeStatistics(
        db, SystemCatalog(), config, np.random.default_rng(0)
    )


def block_for(db, sql=SQL):
    return build_query_graph(parse_select(sql), db)


def test_disabled_returns_nothing(mini_db):
    jits = JustInTimeStatistics(
        mini_db, SystemCatalog(), JITSConfig(enabled=False)
    )
    profile, report = jits.before_optimize(block_for(mini_db), now=1)
    assert profile is None
    assert report.candidates == []


def test_always_collect_bypasses_sensitivity(mini_db):
    jits = make_jits(mini_db, always_collect=True)
    profile, report = jits.before_optimize(block_for(mini_db), now=1)
    assert profile is not None
    assert report.collection.tables_sampled == ["car"]
    assert report.collection.groups_computed == 3
    # always_collect also materializes everything representable.
    assert len(jits.archive) >= 1


def test_first_query_collects_under_default_smax(mini_db):
    jits = make_jits(mini_db, s_max=0.5)
    profile, report = jits.before_optimize(block_for(mini_db), now=1)
    assert profile is not None
    assert "car" in report.collection.tables_sampled


def test_smax_one_collects_nothing(mini_db):
    jits = make_jits(mini_db, s_max=1.0)
    profile, report = jits.before_optimize(block_for(mini_db), now=1)
    assert profile is None
    assert report.collection.tables_sampled == []
    # s_max=1 behaves like a traditional system: not even cardinalities.
    assert jits.catalog.table_stats("car") is None


def test_table_cardinalities_refreshed(mini_db):
    jits = make_jits(mini_db, s_max=0.5)
    jits.before_optimize(block_for(mini_db), now=1)
    stats = jits.catalog.table_stats("owner")
    assert stats is not None
    assert stats.cardinality == mini_db.table("owner").row_count


def test_feedback_populates_history(mini_db):
    jits = make_jits(mini_db)
    group = PredicateGroup.of(
        LocalPredicate("c", "make", PredOp.EQ, ("Toyota",))
    )
    record = FeedbackRecord(
        table="car",
        group=group,
        statlist=(("make",),),
        source="catalog",
        estimated_selectivity=0.1,
        actual_selectivity=0.3,
    )
    jits.after_execute([record], now=2)
    entries = jits.history.entries_for_group("car", ("make",))
    assert len(entries) == 1
    assert entries[0].errorfactor == pytest.approx(1 / 3)


def test_feedback_disabled(mini_db):
    jits = make_jits(mini_db, feedback_enabled=False)
    group = PredicateGroup.of(
        LocalPredicate("c", "make", PredOp.EQ, ("Toyota",))
    )
    record = FeedbackRecord(
        table="car", group=group, statlist=(), source="catalog",
        estimated_selectivity=0.1, actual_selectivity=0.3,
    )
    jits.after_execute([record], now=2)
    assert len(jits.history) == 0


def test_materialize_disabled_keeps_archive_empty(mini_db):
    jits = make_jits(mini_db, always_collect=True, materialize_enabled=False)
    profile, report = jits.before_optimize(block_for(mini_db), now=1)
    assert profile is not None
    assert report.collection.groups_materialized == 0
    assert len(jits.archive) == 0


def test_migration_tick_interval(mini_db):
    jits = make_jits(mini_db, always_collect=True, migration_interval=10)
    jits.before_optimize(block_for(mini_db), now=1)
    assert jits.tick(now=5) == 0  # before the interval
    migrated = jits.tick(now=12)
    assert migrated >= 1
    assert jits.tick(now=13) == 0  # interval restarts


def test_migration_disabled(mini_db):
    jits = make_jits(mini_db, always_collect=True, migration_interval=0)
    jits.before_optimize(block_for(mini_db), now=1)
    assert jits.tick(now=1000) == 0


def test_repeat_identical_query_stops_collecting(mini_db):
    """Collection decays for a repeated query: the first compile samples
    but cannot materialize (no history yet — the paper's Alg. 4 needs
    usage evidence), the second materializes, the third skips collection
    because the archive now answers the group accurately."""
    jits = make_jits(mini_db, s_max=0.4)

    def run(now):
        profile, report = jits.before_optimize(block_for(mini_db), now=now)
        if profile is None:
            return report
        full = max(
            (g for c in report.candidates for g in c.groups),
            key=lambda g: g.size,
        )
        sel = profile.selectivity("car", full)
        if sel is not None:
            jits.after_execute(
                [
                    FeedbackRecord(
                        table="car",
                        group=full,
                        statlist=(full.columns(),),
                        source="qss-exact",
                        estimated_selectivity=max(sel, 1e-6),
                        actual_selectivity=max(sel, 1e-6),
                    )
                ],
                now=now,
            )
        return report

    report1 = run(now=1)
    assert report1.collection.tables_sampled  # cold start: sample
    assert report1.collection.groups_materialized == 0  # bootstrap lag

    report2 = run(now=2)
    assert report2.collection.groups_materialized >= 1  # history justifies it

    report3 = run(now=3)
    assert report3.collection.tables_sampled == []  # archive answers now
