"""Residual-predicate statistics (paper Section 3.4, footnote 1)."""

import pytest

from repro import Engine, EngineConfig
from repro.jits import ResidualStatisticsStore, residual_key
from repro.sql import ast, parse_select
from repro.sql.qgm import build_query_graph


def make_expr(db, sql):
    block = build_query_graph(parse_select(sql), db)
    alias = next(iter(block.scan_residuals))
    return block.scan_residuals[alias][0], alias


# ----------------------------------------------------------------------
# Key normalization
# ----------------------------------------------------------------------
def test_key_is_alias_independent(mini_db):
    expr1, alias1 = make_expr(
        mini_db, "SELECT c.id FROM car c WHERE c.price > c.year * 10"
    )
    expr2, alias2 = make_expr(
        mini_db, "SELECT x.id FROM car x WHERE x.price > x.year * 10"
    )
    assert alias1 != alias2
    assert residual_key(expr1, alias1) == residual_key(expr2, alias2)


def test_key_distinguishes_different_predicates(mini_db):
    expr1, alias1 = make_expr(
        mini_db, "SELECT id FROM car WHERE price > year * 10"
    )
    expr2, alias2 = make_expr(
        mini_db, "SELECT id FROM car WHERE price > year * 20"
    )
    assert residual_key(expr1, alias1) != residual_key(expr2, alias2)


def test_key_covers_or_and_not_in(mini_db):
    expr, alias = make_expr(
        mini_db,
        "SELECT id FROM car WHERE make = 'Ford' OR year NOT IN (2000, 2001)",
    )
    key = residual_key(expr, alias)
    assert "OR" in key and "NOT IN" in key


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------
def test_record_and_lookup():
    store = ResidualStatisticsStore()
    store.record("t", "k", 0.4, now=1)
    assert store.lookup("T", "k", now=2) == pytest.approx(0.4)
    assert store.lookup("t", "other", now=2) is None


def test_record_overwrites():
    store = ResidualStatisticsStore()
    store.record("t", "k", 0.4, now=1)
    store.record("t", "k", 0.6, now=5)
    assert store.lookup("t", "k", now=6) == pytest.approx(0.6)
    assert len(store) == 1


def test_lru_eviction():
    store = ResidualStatisticsStore(capacity=2)
    store.record("t", "a", 0.1, now=1)
    store.record("t", "b", 0.2, now=2)
    store.lookup("t", "a", now=3)  # refresh a
    store.record("t", "c", 0.3, now=4)  # evicts b (least recently used)
    assert store.lookup("t", "b", now=5) is None
    assert store.lookup("t", "a", now=5) is not None
    assert store.evictions == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        ResidualStatisticsStore(capacity=0)


def test_drop_table():
    store = ResidualStatisticsStore()
    store.record("t", "a", 0.1, now=1)
    store.record("u", "a", 0.2, now=1)
    assert store.drop_table("t") == 1
    assert store.lookup("t", "a", now=2) is None
    assert store.lookup("u", "a", now=2) is not None


# ----------------------------------------------------------------------
# End to end through the engine
# ----------------------------------------------------------------------
def test_engine_collects_and_reuses_residual_selectivity(mini_db):
    engine = Engine(
        mini_db, EngineConfig.with_jits(always_collect=True, sample_size=10**6)
    )
    # OR-predicate is residual; a local predicate triggers collection.
    sql = (
        "SELECT id FROM car WHERE make = 'Toyota' "
        "AND (year < 1998 OR year > 2005)"
    )
    first = engine.execute(sql)
    assert len(engine.jits.residual_store) >= 1

    # Second compile: the scan estimate now uses the observed residual
    # selectivity instead of the 0.25 default.
    second = engine.execute(sql)
    scan = second.plan.walk()[-1]
    actual_fraction = scan.actual_rows / mini_db.table("car").row_count
    est_fraction = scan.est_rows / mini_db.table("car").row_count
    assert est_fraction == pytest.approx(actual_fraction, rel=0.15)


def test_residual_store_disabled_without_jits(mini_db):
    engine = Engine(mini_db, EngineConfig.traditional())
    engine.execute("SELECT id FROM car WHERE year < 1998 OR year > 2005")
    assert len(engine.jits.residual_store) == 0
