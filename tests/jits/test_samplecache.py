"""Sample and predicate-mask caches (the compilation fast path)."""

import numpy as np
import pytest

from repro.jits import MaskCache, SampleCache
from repro.predicates import LocalPredicate, PredOp


def make_cache(mini_db, sample_size=100, staleness=0.05, seed=0):
    return SampleCache(
        mini_db, sample_size, np.random.default_rng(seed), staleness=staleness
    )


def pred(column, op=PredOp.GT, value=1999):
    return LocalPredicate("c", column, op, (value,))


# ----------------------------------------------------------------------
# SampleCache
# ----------------------------------------------------------------------
def test_sample_reused_while_table_unchanged(mini_db):
    cache = make_cache(mini_db)
    rows1, epoch1, hit1 = cache.get("car")
    rows2, epoch2, hit2 = cache.get("CAR")  # case-insensitive key
    assert not hit1 and hit2
    assert epoch1 == epoch2 == 0
    assert rows1 is rows2
    assert cache.hits == 1 and cache.misses == 1


def test_epoch_tracks_redraws(mini_db):
    cache = make_cache(mini_db)
    assert cache.epoch("car") == -1  # no draw yet
    cache.get("car")
    assert cache.epoch("car") == 0
    cache.invalidate("car")
    _, epoch, hit = cache.get("car")
    assert not hit and epoch == 1
    assert cache.epoch("car") == 1


def test_udi_threshold_invalidates(mini_db):
    cache = make_cache(mini_db, staleness=0.05)
    cache.get("car")
    car = mini_db.table("car")
    threshold = max(1, int(0.05 * car.row_count))
    # Touch just under the threshold: still fresh.
    car.udi_total += threshold - 1
    _, _, hit = cache.get("car")
    assert hit
    # One more modified row crosses it.
    car.udi_total += 1
    _, epoch, hit = cache.get("car")
    assert not hit and epoch == 1
    assert cache.invalidations == 1


def test_shrunk_table_invalidates(mini_db):
    # Deletes compact row positions, so any shrink discards the sample even
    # when the UDI activity alone would stay under the threshold.
    cache = make_cache(mini_db, staleness=0.9)
    cache.get("car")
    car = mini_db.table("car")
    car.delete_rows(np.array([0, 1, 2], dtype=np.int64))
    _, _, hit = cache.get("car")
    assert not hit


def test_small_table_growth_invalidates(mini_db):
    # owner (200 rows) is below sample_size=400: the "sample" is the whole
    # table, so any growth warrants a fresh draw that sees the new rows.
    cache = make_cache(mini_db, sample_size=400, staleness=0.9)
    rows, _, _ = cache.get("owner")
    assert len(rows) == 200
    mini_db.table("owner").insert_rows(
        [{"id": 200, "name": "late", "salary": 1.0, "city": "Ottawa"}]
    )
    rows, _, hit = cache.get("owner")
    assert not hit
    assert len(rows) == 201


def test_drop_table_forgets_sample_and_epoch(mini_db):
    cache = make_cache(mini_db)
    cache.get("car")
    cache.drop_table("car")
    assert cache.epoch("car") == -1


# ----------------------------------------------------------------------
# MaskCache
# ----------------------------------------------------------------------
def test_mask_roundtrip_and_epoch_keying():
    cache = MaskCache()
    mask = np.array([True, False, True])
    p = pred("year")
    assert cache.lookup("car", p, 0) is None
    cache.store("car", p, 0, mask)
    assert cache.lookup("CAR", p, 0) is mask
    # A new sample epoch means new row alignment: stale key misses.
    assert cache.lookup("car", p, 1) is None
    assert cache.hits == 1 and cache.misses == 2


def test_mask_lru_eviction():
    cache = MaskCache(max_entries=2)
    a, b, c = pred("year"), pred("price"), pred("id")
    mask = np.ones(3, dtype=bool)
    cache.store("t", a, 0, mask)
    cache.store("t", b, 0, mask)
    cache.lookup("t", a, 0)  # refresh a
    cache.store("t", c, 0, mask)  # evicts b (least recently used)
    assert cache.lookup("t", b, 0) is None
    assert cache.lookup("t", a, 0) is not None
    assert len(cache) == 2


def test_mask_drop_table():
    cache = MaskCache()
    mask = np.zeros(2, dtype=bool)
    cache.store("car", pred("year"), 0, mask)
    cache.store("owner", pred("salary"), 0, mask)
    cache.drop_table("CAR")
    assert len(cache) == 1
    assert cache.lookup("owner", pred("salary"), 0) is not None
