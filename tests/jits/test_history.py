"""StatHistory (paper Table 1 as a data structure)."""

import pytest

from repro.jits import StatHistory, canonical_colgroup


def test_canonical_colgroup():
    assert canonical_colgroup(["B", "a"]) == ("a", "b")


def test_record_creates_entry():
    h = StatHistory()
    entry = h.record("T1", ["a", "b", "c"], [["a", "b"], ["c"]], 0.4)
    assert entry.table == "t1"
    assert entry.colgrp == ("a", "b", "c")
    assert entry.statlist == (("a", "b"), ("c",))
    assert entry.count == 1
    assert entry.errorfactor == pytest.approx(0.4)


def test_repeat_increments_and_smooths():
    h = StatHistory()
    h.record("t", ["a"], [["a"]], 1.0)
    entry = h.record("t", ["a"], [["a"]], 0.5)
    assert entry.count == 2
    assert entry.errorfactor == pytest.approx(0.75)  # EMA with alpha 0.5


def test_different_statlists_separate_entries():
    """Table 1 of the paper: the same colgrp appears with several
    statlists, each with its own count and errorfactor."""
    h = StatHistory()
    h.record("t1", ["a", "b", "c"], [["a", "b"], ["c"]], 0.4)
    h.record("t1", ["a", "b", "c"], [["a"], ["b", "c"]], 0.5)
    h.record("t1", ["a", "b", "c"], [["a", "b", "c"]], 1.0)
    h.record("t1", ["a", "b", "d"], [["a", "b"], ["d"]], 0.75)
    assert len(h) == 4
    assert len(h.entries_for_group("t1", ["a", "b", "c"])) == 3
    assert len(h.entries_for_group("t1", ["c", "b", "a"])) == 3  # canonical


def test_entries_using_stat():
    """Alg. 4's lookup: history rows with the statistic in the statlist."""
    h = StatHistory()
    h.record("t1", ["a", "b", "c"], [["a", "b"], ["c"]], 0.4)
    h.record("t1", ["a", "b", "c"], [["a"], ["b", "c"]], 0.5)
    h.record("t1", ["a", "b", "d"], [["a", "b"], ["d"]], 0.75)
    using_ab = h.entries_using_stat("t1", ["a", "b"])
    assert len(using_ab) == 2  # first and third, per the paper's example
    assert len(h.entries_using_stat("t1", ["b", "c"])) == 1
    assert len(h.entries_using_stat("t1", ["zz"])) == 0


def test_symmetric_accuracy():
    h = StatHistory()
    under = h.record("t", ["a"], [["a"]], 0.25)
    assert under.symmetric_accuracy == pytest.approx(0.25)
    h2 = StatHistory()
    over = h2.record("t", ["b"], [["b"]], 4.0)
    assert over.symmetric_accuracy == pytest.approx(0.25)
    h3 = StatHistory()
    exact = h3.record("t", ["c"], [["c"]], 1.0)
    assert exact.symmetric_accuracy == pytest.approx(1.0)


def test_total_count():
    h = StatHistory()
    h.record("t", ["a"], [["a"]], 1.0)
    h.record("t", ["a"], [["a"]], 1.0)
    h.record("t", ["b"], [["b"]], 1.0)
    assert h.total_count() == 3


def test_tables_isolated():
    h = StatHistory()
    h.record("t1", ["a"], [["a"]], 1.0)
    h.record("t2", ["a"], [["a"]], 1.0)
    assert len(h.entries_for_group("t1", ["a"])) == 1
    assert len(h.entries_using_stat("t2", ["a"])) == 1
