"""Engine SELECT pipeline: results, timings, plans, feedback."""

import pytest

from repro import Engine, EngineConfig
from repro.errors import BindingError, SqlSyntaxError


def test_select_returns_rows(plain_engine):
    result = plain_engine.execute("SELECT id, name FROM owner WHERE id < 3")
    assert result.statement_type == "select"
    assert result.columns == ["id", "name"]
    assert sorted(result.rows) == [(0, "owner_0"), (1, "owner_1"), (2, "owner_2")]


def test_timings_per_phase(plain_engine):
    result = plain_engine.execute("SELECT id FROM owner")
    assert result.compile_time > 0
    assert result.execution_time > 0
    assert result.fetch_time >= 0
    assert result.total_time == pytest.approx(
        result.compile_time + result.execution_time + result.fetch_time
    )


def test_plan_attached_with_actuals(plain_engine):
    result = plain_engine.execute("SELECT id FROM owner WHERE salary > 100")
    assert result.plan is not None
    assert result.plan.actual_rows == len(result.rows)
    assert "SeqScan" in result.explain() or "IndexScan" in result.explain()


def test_modeled_cost_positive(plain_engine):
    result = plain_engine.execute("SELECT id FROM owner")
    assert result.modeled_execution_cost() > 0


def test_explain_does_not_execute(stats_engine):
    text = stats_engine.explain(
        "SELECT o.name FROM car c, owner o WHERE c.ownerid = o.id"
    )
    assert "Join" in text
    assert "actual" not in text


def test_explain_rejects_dml(stats_engine):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        stats_engine.explain("DELETE FROM owner")


def test_syntax_error_propagates(plain_engine):
    with pytest.raises(SqlSyntaxError):
        plain_engine.execute("SELEC id FROM owner")


def test_binding_error_propagates(plain_engine):
    with pytest.raises(BindingError):
        plain_engine.execute("SELECT ghost FROM owner")


def test_clock_advances(plain_engine):
    before = plain_engine.clock
    plain_engine.execute("SELECT id FROM owner")
    plain_engine.execute("SELECT id FROM owner")
    assert plain_engine.clock == before + 2


def test_feedback_attached_when_jits_enabled(jits_engine):
    result = jits_engine.execute(
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'"
    )
    assert result.jits_report is not None
    assert result.feedback  # estimate/actual comparison recorded
    assert len(jits_engine.jits.history) >= 1


def test_jits_exact_estimates_used(jits_engine, mini_db):
    result = jits_engine.execute(
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'"
    )
    record = result.feedback[0]
    assert record.source == "qss-exact"
    # Sampled at 400 rows from 600: close to exact.
    assert record.symmetric_accuracy > 0.8


def test_fetch_overhead_configurable(mini_db):
    config = EngineConfig.traditional()
    config.fetch_overhead = 0.25
    engine = Engine(mini_db, config)
    result = engine.execute("SELECT id FROM owner WHERE id = 1")
    assert result.fetch_time >= 0.25
