"""Units for the concurrency primitives behind the session layer."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import AtomicCounter, RWLock
from repro.storage import UDIShard, active_udi_shard, udi_shard_scope
from tests.conftest import build_mini_db


# ----------------------------------------------------------------------
# AtomicCounter
# ----------------------------------------------------------------------
def test_atomic_counter_unique_monotone_under_threads():
    counter = AtomicCounter()
    drawn = []
    lock = threading.Lock()

    def worker():
        local = [counter.next() for _ in range(500)]
        with lock:
            drawn.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 4000
    assert len(set(drawn)) == 4000
    assert sorted(drawn) == list(range(1, 4001))


def test_atomic_counter_add():
    counter = AtomicCounter(initial=10)
    assert counter.add(5) == 15
    assert counter.value == 15


# ----------------------------------------------------------------------
# RWLock
# ----------------------------------------------------------------------
def test_rwlock_readers_share():
    lock = RWLock()
    barrier = threading.Barrier(4, timeout=5)
    inside = []

    def reader():
        with lock.read_locked():
            barrier.wait()  # all four readers inside together, or timeout
            inside.append(1)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(inside) == 4


def test_rwlock_writer_excludes_everyone():
    lock = RWLock()
    value = {"n": 0}

    def writer():
        for _ in range(200):
            with lock.write_locked():
                # Deliberately non-atomic update: only mutual exclusion
                # keeps the final count exact.
                n = value["n"]
                time.sleep(0)
                value["n"] = n + 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert value["n"] == 800


def test_rwlock_writer_preference_blocks_new_readers():
    lock = RWLock()
    order = []
    lock.acquire_read()  # initial reader holds the lock

    writer_started = threading.Event()

    def writer():
        writer_started.set()
        with lock.write_locked():
            order.append("writer")

    def late_reader():
        with lock.read_locked():
            order.append("reader")

    w = threading.Thread(target=writer)
    w.start()
    writer_started.wait(timeout=5)
    time.sleep(0.05)  # let the writer reach its wait loop
    r = threading.Thread(target=late_reader)
    r.start()
    time.sleep(0.05)
    # Neither may enter while the initial reader holds the lock, and the
    # late reader must queue behind the waiting writer.
    assert order == []
    lock.release_read()
    w.join(timeout=5)
    r.join(timeout=5)
    assert order == ["writer", "reader"]


def test_rwlock_read_then_write_sequential_reuse():
    lock = RWLock()
    with lock.read_locked():
        pass
    with lock.write_locked():
        pass
    with lock.read_locked():
        pass


# ----------------------------------------------------------------------
# UDI shards
# ----------------------------------------------------------------------
def test_udi_shard_defers_until_flush():
    db = build_mini_db(n_owners=20, n_cars=40, seed=3)
    car = db.table("car")
    before = car.udi_total
    shard = UDIShard()
    with udi_shard_scope(shard):
        assert active_udi_shard() is shard
        car.delete_rows([0, 1])
        # The mutation is parked in the shard, not on the table.
        assert car.udi_total == before
        assert len(shard) == 1
    assert active_udi_shard() is None
    shard.flush()
    assert car.udi_total == before + 2
    assert len(shard) == 0


def test_udi_shard_scope_restores_previous():
    outer, inner = UDIShard(), UDIShard()
    with udi_shard_scope(outer):
        with udi_shard_scope(inner):
            assert active_udi_shard() is inner
        assert active_udi_shard() is outer
    assert active_udi_shard() is None


def test_mutation_without_shard_applies_directly():
    db = build_mini_db(n_owners=20, n_cars=40, seed=3)
    owner = db.table("owner")
    before = owner.udi_total
    owner.delete_rows([0])
    assert owner.udi_total == before + 1
