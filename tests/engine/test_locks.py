"""Units for the concurrency primitives behind the session layer."""

from __future__ import annotations

import threading
import time

import pytest

from repro.engine import AtomicCounter, LockManager, RWLock
from repro.storage import UDIShard, active_udi_shard, udi_shard_scope
from tests.conftest import build_mini_db


# ----------------------------------------------------------------------
# AtomicCounter
# ----------------------------------------------------------------------
def test_atomic_counter_unique_monotone_under_threads():
    counter = AtomicCounter()
    drawn = []
    lock = threading.Lock()

    def worker():
        local = [counter.next() for _ in range(500)]
        with lock:
            drawn.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counter.value == 4000
    assert len(set(drawn)) == 4000
    assert sorted(drawn) == list(range(1, 4001))


def test_atomic_counter_add():
    counter = AtomicCounter(initial=10)
    assert counter.add(5) == 15
    assert counter.value == 15


# ----------------------------------------------------------------------
# RWLock
# ----------------------------------------------------------------------
def test_rwlock_readers_share():
    lock = RWLock()
    barrier = threading.Barrier(4, timeout=5)
    inside = []

    def reader():
        with lock.read_locked():
            barrier.wait()  # all four readers inside together, or timeout
            inside.append(1)

    threads = [threading.Thread(target=reader) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(inside) == 4


def test_rwlock_writer_excludes_everyone():
    lock = RWLock()
    value = {"n": 0}

    def writer():
        for _ in range(200):
            with lock.write_locked():
                # Deliberately non-atomic update: only mutual exclusion
                # keeps the final count exact.
                n = value["n"]
                time.sleep(0)
                value["n"] = n + 1

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert value["n"] == 800


def test_rwlock_writer_preference_blocks_new_readers():
    lock = RWLock()
    order = []
    lock.acquire_read()  # initial reader holds the lock

    writer_started = threading.Event()

    def writer():
        writer_started.set()
        with lock.write_locked():
            order.append("writer")

    def late_reader():
        with lock.read_locked():
            order.append("reader")

    w = threading.Thread(target=writer)
    w.start()
    writer_started.wait(timeout=5)
    time.sleep(0.05)  # let the writer reach its wait loop
    r = threading.Thread(target=late_reader)
    r.start()
    time.sleep(0.05)
    # Neither may enter while the initial reader holds the lock, and the
    # late reader must queue behind the waiting writer.
    assert order == []
    lock.release_read()
    w.join(timeout=5)
    r.join(timeout=5)
    assert order == ["writer", "reader"]


def test_rwlock_read_then_write_sequential_reuse():
    lock = RWLock()
    with lock.read_locked():
        pass
    with lock.write_locked():
        pass
    with lock.read_locked():
        pass


# ----------------------------------------------------------------------
# UDI shards
# ----------------------------------------------------------------------
def test_udi_shard_defers_until_flush():
    db = build_mini_db(n_owners=20, n_cars=40, seed=3)
    car = db.table("car")
    before = car.udi_total
    shard = UDIShard()
    with udi_shard_scope(shard):
        assert active_udi_shard() is shard
        car.delete_rows([0, 1])
        # The mutation is parked in the shard, not on the table.
        assert car.udi_total == before
        assert len(shard) == 1
    assert active_udi_shard() is None
    shard.flush()
    assert car.udi_total == before + 2
    assert len(shard) == 0


def test_udi_shard_scope_restores_previous():
    outer, inner = UDIShard(), UDIShard()
    with udi_shard_scope(outer):
        with udi_shard_scope(inner):
            assert active_udi_shard() is inner
        assert active_udi_shard() is outer
    assert active_udi_shard() is None


def test_mutation_without_shard_applies_directly():
    db = build_mini_db(n_owners=20, n_cars=40, seed=3)
    owner = db.table("owner")
    before = owner.udi_total
    owner.delete_rows([0])
    assert owner.udi_total == before + 1


# ----------------------------------------------------------------------
# LockManager
# ----------------------------------------------------------------------
def test_lockmanager_table_lock_identity_case_insensitive():
    manager = LockManager()
    assert manager.table_lock("Car") is manager.table_lock("car")
    assert manager.table_lock("car") is not manager.table_lock("owner")


def test_lockmanager_disjoint_table_writers_overlap():
    """Writers on four different tables must all be inside their scopes
    at the same time — the point of per-table granularity."""
    manager = LockManager()
    tables = ["car", "owner", "demographics", "accidents"]
    barrier = threading.Barrier(len(tables), timeout=5.0)
    broken = []

    def worker(name):
        with manager.write_tables((name,)):
            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                broken.append(name)

    threads = [
        threading.Thread(target=worker, args=(name,)) for name in tables
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads)
    assert broken == []


def test_lockmanager_coarse_mode_serializes_disjoint_writers():
    """granular=False degrades to the database-level lock: writers on
    different tables never overlap."""
    manager = LockManager(granular=False)
    state = {"active": 0, "peak": 0}
    gate = threading.Lock()

    def worker(name):
        for _ in range(5):
            with manager.write_tables((name,)):
                with gate:
                    state["active"] += 1
                    state["peak"] = max(state["peak"], state["active"])
                time.sleep(0.001)
                with gate:
                    state["active"] -= 1

    threads = [
        threading.Thread(target=worker, args=(name,))
        for name in ("car", "owner", "demographics")
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads)
    assert state["peak"] == 1


def test_lockmanager_same_table_writers_exclude():
    """Unsynchronized read-modify-write under the same table's write
    scope must not lose updates."""
    manager = LockManager()
    state = {"value": 0}

    def bump():
        for _ in range(20):
            with manager.write_tables(("car",)):
                value = state["value"]
                time.sleep(0.0002)
                state["value"] = value + 1

    threads = [threading.Thread(target=bump) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not any(t.is_alive() for t in threads)
    assert state["value"] == 80


def test_lockmanager_exclusive_excludes_table_scopes():
    """Database-exclusive mode blocks per-table writers until release."""
    manager = LockManager()
    order = []
    entered = threading.Event()
    release = threading.Event()

    def exclusive():
        with manager.exclusive():
            entered.set()
            release.wait(timeout=5)
            order.append("exclusive")

    def writer():
        assert entered.wait(timeout=5)
        with manager.write_tables(("car",)):
            order.append("writer")

    t_excl = threading.Thread(target=exclusive)
    t_writer = threading.Thread(target=writer)
    t_excl.start()
    t_writer.start()
    assert entered.wait(timeout=5)
    time.sleep(0.05)
    assert order == []  # the writer is parked behind the exclusive scope
    release.set()
    t_excl.join(timeout=10)
    t_writer.join(timeout=10)
    assert order == ["exclusive", "writer"]


def test_lockmanager_read_tables_none_falls_back_to_exclusive():
    """An unresolvable table set must take the database write lock, so
    even a plain table reader waits for it."""
    manager = LockManager()
    order = []
    entered = threading.Event()
    release = threading.Event()

    def fallback_reader():
        with manager.read_tables(None):
            entered.set()
            release.wait(timeout=5)
            order.append("fallback")

    def table_reader():
        assert entered.wait(timeout=5)
        with manager.read_tables(("car",)):
            order.append("reader")

    t_fb = threading.Thread(target=fallback_reader)
    t_rd = threading.Thread(target=table_reader)
    t_fb.start()
    t_rd.start()
    assert entered.wait(timeout=5)
    time.sleep(0.05)
    assert order == []
    release.set()
    t_fb.join(timeout=10)
    t_rd.join(timeout=10)
    assert order == ["fallback", "reader"]


def test_lockmanager_readers_share_tables_with_disjoint_writer():
    """Readers of one table overlap each other and a writer on another
    table, all under the shared database intent lock."""
    manager = LockManager()
    barrier = threading.Barrier(3, timeout=5.0)
    broken = []

    def reader():
        with manager.read_tables(("car", "owner")):
            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                broken.append("reader")

    def writer():
        with manager.write_tables(("accidents",)):
            try:
                barrier.wait()
            except threading.BrokenBarrierError:
                broken.append("writer")

    threads = [
        threading.Thread(target=reader),
        threading.Thread(target=reader),
        threading.Thread(target=writer),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=10)
    assert not any(t.is_alive() for t in threads)
    assert broken == []


def test_lockmanager_multi_table_ordering_stress():
    """Randomized overlapping multi-table write scopes: sorted-order
    acquisition must drain without deadlock and without lost updates."""
    import random

    manager = LockManager()
    tables = ["car", "owner", "demographics", "accidents"]
    counts = {name: 0 for name in tables}
    rng = random.Random(7)
    batches = [
        [
            tuple(rng.sample(tables, rng.randint(1, 3)))
            for _ in range(40)
        ]
        for _ in range(6)
    ]

    def worker(batch):
        for names in batch:
            with manager.write_tables(names):
                for name in names:
                    counts[name] = counts[name] + 1

    threads = [
        threading.Thread(target=worker, args=(batch,)) for batch in batches
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not any(t.is_alive() for t in threads), "deadlocked"
    expected = {name: 0 for name in tables}
    for batch in batches:
        for names in batch:
            for name in names:
                expected[name] += 1
    assert counts == expected
