"""Engine plan cache + compilation fast path end-to-end behavior."""

import pytest

from repro import Engine, EngineConfig, ReproError
from repro.jits import JITSConfig

from ..conftest import build_mini_db

SQL = "SELECT COUNT(*) FROM car WHERE price < 20000 AND year > 1999"


def fastpath_engine(**kwargs):
    return Engine(build_mini_db(), EngineConfig.fastpath(**kwargs))


def test_repeat_template_hits_plan_cache():
    engine = fastpath_engine()
    first = engine.execute(SQL)
    second = engine.execute(SQL)
    third = engine.execute(SQL)
    assert not first.jits_report.plan_cache_hit
    assert second.jits_report.plan_cache_hit
    assert third.jits_report.plan_cache_hit
    assert first.rows == second.rows == third.rows
    assert engine.plan_cache.hits == 2
    assert engine.plan_cache.misses == 1


def test_literal_change_is_a_different_template():
    engine = fastpath_engine()
    engine.execute(SQL)
    other = engine.execute(SQL.replace("20000", "30000"))
    assert not other.jits_report.plan_cache_hit
    assert len(engine.plan_cache) == 2


def test_heavy_churn_invalidates_cached_plan():
    engine = fastpath_engine()
    engine.execute(SQL)
    assert engine.execute(SQL).jits_report.plan_cache_hit
    # A whole-table UPDATE moves the table's UDI epoch past any staleness
    # threshold; the cached plan must be recompiled, not reused.
    engine.execute("UPDATE car SET price = price * 2")
    refreshed = engine.execute(SQL)
    assert not refreshed.jits_report.plan_cache_hit
    assert engine.plan_cache.invalidations >= 1


def test_small_dml_keeps_plan_cached():
    engine = fastpath_engine()
    engine.execute(SQL)
    # One row out of 600 stays under the 5% staleness epoch step.
    engine.execute("DELETE FROM car WHERE id = 0")
    assert engine.execute(SQL).jits_report.plan_cache_hit


def test_ddl_invalidates_plans():
    engine = fastpath_engine()
    engine.execute(SQL)
    engine.execute("SELECT COUNT(*) FROM owner WHERE salary > 5000")
    assert len(engine.plan_cache) == 2
    engine.execute("DROP TABLE owner")
    assert len(engine.plan_cache) == 1  # only the owner plan is gone
    engine.execute("CREATE INDEX car_year ON car (year)")
    assert len(engine.plan_cache) == 0  # new access path: clear everything


def test_drop_table_clears_jits_state():
    engine = fastpath_engine()
    engine.execute(SQL)
    engine.execute("DROP TABLE car")
    assert engine.jits.sample_cache.epoch("car") == -1
    assert not engine.jits.archive.has("car", ["price", "year"])


def test_plan_cache_off_by_default():
    engine = Engine(build_mini_db(), EngineConfig.with_jits())
    assert engine.plan_cache is None
    result = engine.execute(SQL)
    assert not result.jits_report.plan_cache_hit


def test_fastpath_results_match_cache_disabled_engine():
    # Regression for the acceptance criterion: on an unchanged table the
    # fast path (all caches on) and the cache-disabled path must agree on
    # results and, within sampling tolerance, on selectivity estimates.
    queries = [
        SQL,
        "SELECT COUNT(*) FROM car WHERE year > 2002",
        "SELECT make, COUNT(*) FROM car WHERE price < 25000 GROUP BY make",
        SQL,  # repeat: served from the plan cache on the fast engine
    ]
    fast = fastpath_engine()
    slow_config = EngineConfig(
        jits=JITSConfig(
            enabled=True,
            sample_cache_enabled=False,
            mask_cache_enabled=False,
            deferred_calibration=False,
        )
    )
    slow = Engine(build_mini_db(), slow_config)
    for sql in queries:
        a = fast.execute(sql)
        b = slow.execute(sql)
        assert sorted(map(tuple, a.rows)) == sorted(map(tuple, b.rows))
    # Both engines watched the same workload; their archived selectivity
    # estimates for the shared template should be close (same sample-size
    # estimator, different random draws).
    fa = fast.jits.archive.lookup("car", ["price", "year"])
    sa = slow.jits.archive.lookup("car", ["price", "year"])
    if fa is not None and sa is not None:
        assert fa.total_mass == pytest.approx(sa.total_mass, rel=0.05)


def test_engine_config_validation():
    with pytest.raises(ReproError):
        EngineConfig(plan_cache_size=0)
    with pytest.raises(ReproError):
        EngineConfig(plan_staleness=0.0)
    with pytest.raises(ReproError):
        EngineConfig(fetch_overhead=-0.1)


def test_jits_config_validation():
    with pytest.raises(ReproError):
        JITSConfig(sample_size=0)
    with pytest.raises(ReproError):
        JITSConfig(cell_budget=-1)
    with pytest.raises(ReproError):
        JITSConfig(s_max=1.5)
    with pytest.raises(ReproError):
        JITSConfig(migration_interval=-1)
    with pytest.raises(ReproError):
        JITSConfig(sample_staleness=0.0)
    with pytest.raises(ReproError):
        JITSConfig(mask_cache_size=0)
