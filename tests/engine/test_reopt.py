"""Mid-query adaptive re-optimization: triggers, splicing, feedback, parity.

The invariants: (1) a forced cardinality misestimate past the threshold
suspends execution at a pipeline breaker and splices a re-optimized plan
over the materialized intermediate; (2) results are always identical to
the unswitched plan; (3) the feedback loop sees each quantifier exactly
once no matter how many plan segments ran; (4) ``reopt=off`` is
byte-identical to an engine that predates the feature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, DataType, Engine, EngineConfig, make_schema
from repro.errors import ConfigError
from tests.harness.differential import run_differential

# Queries over the skewed no-stats schema below: the optimizer's default
# estimates undershoot the a⋈b fan-out badly, so low thresholds trigger.
REOPT_WORKLOAD = [
    "SELECT COUNT(*) FROM a, b, c WHERE a.k = b.k AND a.id = c.id",
    "SELECT b.k, COUNT(*), SUM(c.w) FROM a, b, c "
    "WHERE a.k = b.k AND a.id = c.id GROUP BY b.k ORDER BY b.k",
    "SELECT a.id, b.v FROM a, b WHERE a.k = b.k AND a.id < 100 "
    "ORDER BY a.id, b.v LIMIT 50",
]

TRIGGER_QUERY = REOPT_WORKLOAD[0]


def build_skew_db() -> Database:
    db = Database()
    db.create_table(
        make_schema(
            "a", [("id", DataType.INT), ("k", DataType.INT)],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema("b", [("k", DataType.INT), ("v", DataType.INT)])
    )
    db.create_table(
        make_schema(
            "c", [("id", DataType.INT), ("w", DataType.INT)],
            primary_key="id",
        )
    )
    rng = np.random.default_rng(0)
    db.table("a").insert_columns(
        {"id": np.arange(3000), "k": rng.integers(0, 50, 3000)}
    )
    db.table("b").insert_columns(
        {"k": rng.integers(0, 50, 400), "v": np.arange(400)}
    )
    db.table("c").insert_columns(
        {"id": np.arange(3000), "w": np.arange(3000)}
    )
    db.create_hash_index("c", "id")
    return db


def _reopt_config() -> EngineConfig:
    return EngineConfig(reopt="eager", reopt_threshold=2.0, reopt_max_rounds=3)


def test_forced_misestimate_triggers_plan_switch():
    on = Engine(build_skew_db(), _reopt_config())
    off = Engine(build_skew_db(), EngineConfig())

    result = on.execute(TRIGGER_QUERY)
    baseline = off.execute(TRIGGER_QUERY)
    assert result.rows == baseline.rows
    assert result.reopt_events, "expected at least one plan switch"
    for event in result.reopt_events:
        assert event.ratio >= 2.0
        assert event.kind in (
            "hash-build", "join-output", "aggregate-input", "sort-input"
        )
        assert event.actual_rows >= 0 and event.est_rows >= 0.0
    # The executed plan carries the spliced intermediate, and EXPLAIN
    # annotates it with the reopt round.
    assert "MaterializedScan" in result.explain()
    assert "reopt round" in result.explain()

    snap = on.stats_snapshot()["reopt"]
    assert snap["events"] >= 1
    assert snap["queries_reoptimized"] >= 1
    assert snap["checkpoints_evaluated"] >= snap["events"]
    assert snap["est_actual_ratio_max"] >= 2.0
    assert "reopt" not in off.stats_snapshot()


def test_reopt_results_match_off_engine_for_whole_workload():
    on = Engine(build_skew_db(), _reopt_config())
    off = Engine(build_skew_db(), EngineConfig())
    switched = 0
    for sql in REOPT_WORKLOAD:
        got = on.execute(sql)
        want = off.execute(sql)
        assert sorted(map(repr, got.rows)) == sorted(map(repr, want.rows)), sql
        switched += len(got.reopt_events)
    assert switched >= 1


def test_reopt_off_is_byte_identical_to_default():
    """A below-threshold conservative engine and a plain engine produce
    the same plans, results and (reopt-free) result metadata."""
    quiet = Engine(
        build_skew_db(),
        EngineConfig(reopt="conservative", reopt_threshold=1e9),
    )
    off = Engine(build_skew_db(), EngineConfig())
    for sql in REOPT_WORKLOAD:
        got = quiet.execute(sql)
        want = off.execute(sql)
        assert got.explain() == want.explain(), sql
        assert repr(got.rows) == repr(want.rows), sql
        assert got.reopt_events == []
    snap = quiet.stats_snapshot()["reopt"]
    assert snap["events"] == 0
    assert snap["queries_reoptimized"] == 0
    assert snap["checkpoints_evaluated"] >= 1
    assert set(snap["skips_by_reason"]) <= {
        "below-threshold", "round-cap", "non-splicable"
    }


def test_feedback_emitted_exactly_once_across_segments():
    """After a plan switch, every observed quantifier feeds the history
    exactly once — neither dropped with the abandoned segment nor
    double-counted when both segments scanned it."""
    on = Engine(build_skew_db(), _reopt_config())
    off = Engine(build_skew_db(), EngineConfig())

    got = on.execute(TRIGGER_QUERY)
    want = off.execute(TRIGGER_QUERY)
    assert got.reopt_events, "misestimate did not trigger; test is vacuous"

    tables = [record.table for record in got.feedback]
    assert len(tables) == len(set(tables)), "duplicate feedback records"
    # Whatever both plans observed must agree on actual selectivity: the
    # merged observations carry true per-alias cardinalities.
    want_actuals = {r.table: r.actual_selectivity for r in want.feedback}
    for record in got.feedback:
        if record.table in want_actuals:
            assert record.actual_selectivity == want_actuals[record.table]
    # Estimates are judged against the round-0 plan, which is the same
    # plan the off engine compiled.
    want_estimates = {r.table: r.estimated_selectivity for r in want.feedback}
    for record in got.feedback:
        if record.table in want_estimates:
            assert record.estimated_selectivity == want_estimates[record.table]
    # Re-running keeps the per-statement record count stable.
    again = on.execute(TRIGGER_QUERY)
    assert len(again.feedback) == len(got.feedback)


def test_reopt_config_validation():
    with pytest.raises(ConfigError):
        EngineConfig(reopt="sometimes")
    with pytest.raises(ConfigError):
        EngineConfig(reopt="eager", reopt_threshold=1.0)
    with pytest.raises(ConfigError):
        EngineConfig(reopt="eager", reopt_max_rounds=0)


def test_reopt_differential_across_execution_modes():
    """With re-optimization live, sequential / threaded / process engines
    stay observationally identical: per-statement result sets and final
    state all match."""
    engines = run_differential(
        REOPT_WORKLOAD, build_skew_db, _reopt_config
    )
    try:
        snap = engines["sequential"].stats_snapshot()["reopt"]
        assert snap["events"] >= 1, "no switch fired under differential"
    finally:
        for engine in engines.values():
            engine.shutdown()
