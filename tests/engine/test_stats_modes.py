"""Experiment settings: general stats, workload stats, JITS plumbing."""

import pytest

from repro import Engine, EngineConfig, StatsMode


def test_collect_general_statistics(plain_engine):
    elapsed = plain_engine.collect_general_statistics()
    assert elapsed >= 0
    stats = plain_engine.catalog.table_stats("car")
    assert stats is not None
    assert plain_engine.catalog.column_stats("car", "make") is not None


def test_collect_general_subset(plain_engine):
    plain_engine.collect_general_statistics(tables=["owner"])
    assert plain_engine.catalog.table_stats("owner") is not None
    assert plain_engine.catalog.table_stats("car") is None


def test_collect_workload_column_groups(plain_engine):
    statements = [
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'",
        "SELECT id FROM car WHERE make = 'Ford' AND year > 2000",
        "UPDATE car SET price = price WHERE id = 0",  # ignored (not select)
        "SELECT id FROM owner WHERE salary > 10",  # single column: skipped
    ]
    built, elapsed = plain_engine.collect_workload_column_groups(statements)
    assert built == 2
    assert plain_engine.catalog.group_stats("car", ["make", "model"]) is not None
    assert plain_engine.catalog.group_stats("car", ["make", "year"]) is not None
    assert plain_engine.catalog.group_stats("car", ["model", "year"]) is None


def test_apply_stats_mode_none(mini_db):
    engine = Engine(mini_db, EngineConfig.traditional())
    engine.apply_stats_mode(StatsMode.NONE)
    assert engine.catalog.table_stats("car") is None


def test_apply_stats_mode_general(mini_db):
    engine = Engine(mini_db, EngineConfig.traditional())
    engine.apply_stats_mode(StatsMode.GENERAL)
    assert engine.catalog.table_stats("car") is not None
    assert engine.catalog.groups_with_stats("car") == []


def test_apply_stats_mode_workload(mini_db):
    engine = Engine(mini_db, EngineConfig.traditional())
    engine.apply_stats_mode(
        StatsMode.WORKLOAD,
        ["SELECT id FROM car WHERE make = 'Honda' AND model = 'Civic'"],
    )
    assert engine.catalog.table_stats("car") is not None
    assert engine.catalog.group_stats("car", ["make", "model"]) is not None


def test_group_stats_improve_correlated_estimate(mini_db):
    """Workload stats fix the exact estimation error JITS targets."""
    sql = "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'"

    general = Engine(mini_db, EngineConfig.traditional())
    general.apply_stats_mode(StatsMode.GENERAL)
    general_record = general.execute(sql)

    workload = Engine(mini_db, EngineConfig.traditional())
    workload.apply_stats_mode(StatsMode.WORKLOAD, [sql])
    workload_record = workload.execute(sql)

    # Compare estimated scan rows against the actual result size.
    actual = len(general_record.rows)
    general_est = general_record.plan.walk()[-1].est_rows
    workload_est = workload_record.plan.walk()[-1].est_rows
    assert abs(workload_est - actual) < abs(general_est - actual)


def test_config_factories():
    traditional = EngineConfig.traditional()
    assert not traditional.jits.enabled
    jits = EngineConfig.with_jits(s_max=0.7, sample_size=123)
    assert jits.jits.enabled
    assert jits.jits.s_max == 0.7
    assert jits.jits.sample_size == 123
