"""End-to-end SQL surface coverage through the engine.

Each test exercises a distinct SQL shape against the reference executor
or known-good answers — the dialect contract of the engine.
"""

import pytest

from repro.executor import run_reference
from repro.sql import build_query_graph, parse_select


def check_against_reference(engine, db, sql, ordered=False):
    result = engine.execute(sql)
    block = build_query_graph(parse_select(sql), db)
    want = run_reference(block, db)
    got = result.rows
    if not ordered:
        got, want = sorted(got), sorted(want)
    assert got == want
    return result


def test_cross_join_without_predicate(stats_engine, mini_db):
    result = check_against_reference(
        stats_engine,
        mini_db,
        "SELECT c.id, o.id FROM car c, owner o "
        "WHERE c.id < 3 AND o.id < 4",
    )
    assert result.row_count == 12  # 3 x 4 cross product


def test_three_way_join(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT a.id, b.id FROM car a, car b, owner o "
        "WHERE a.ownerid = o.id AND b.ownerid = o.id AND a.make = 'Honda' "
        "AND b.make = 'Ford' AND o.salary > 8000",
    )


def test_self_join(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT a.id, b.id FROM car a, car b "
        "WHERE a.ownerid = b.ownerid AND a.id < b.id AND a.make = 'Honda' "
        "AND b.make = 'Honda'",
    )


def test_explicit_join_syntax(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT o.name FROM car c JOIN owner o ON c.ownerid = o.id "
        "WHERE c.make = 'Toyota' AND c.year > 2004",
    )


def test_derived_table_join(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT o.name, v.n FROM owner o, "
        "(SELECT ownerid AS oid, COUNT(*) AS n FROM car GROUP BY ownerid) v "
        "WHERE v.oid = o.id AND v.n > 5",
    )


def test_between_string_in_aggregation(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT model, COUNT(*) AS n, MIN(price), MAX(price) FROM car "
        "WHERE make IN ('Toyota', 'Honda') AND price BETWEEN 5000 AND 45000 "
        "GROUP BY model",
    )


def test_having_on_avg(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT city, AVG(salary) AS a FROM owner GROUP BY city "
        "HAVING AVG(salary) > 4500",
    )


def test_arithmetic_in_predicates(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT id FROM car WHERE price / 2 > 20000 AND year + 1 <= 2005",
    )


def test_order_by_two_keys(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT make, year, id FROM car WHERE year >= 2006 "
        "ORDER BY make ASC, year DESC",
        ordered=False,  # ties on (make, year) make full order ambiguous
    )
    result = stats_engine.execute(
        "SELECT make, year, id FROM car WHERE year >= 2006 "
        "ORDER BY make ASC, year DESC"
    )
    keys = [(r[0], -r[1]) for r in result.rows]
    assert keys == sorted(keys)


def test_limit_zero(stats_engine, mini_db):
    result = stats_engine.execute("SELECT id FROM car LIMIT 0")
    assert result.rows == []


def test_distinct_on_join_output(stats_engine, mini_db):
    result = check_against_reference(
        stats_engine,
        mini_db,
        "SELECT DISTINCT o.city FROM car c, owner o "
        "WHERE c.ownerid = o.id AND c.make = 'Ford'",
    )
    assert result.row_count <= 3


def test_select_literal_expression(stats_engine, mini_db):
    result = stats_engine.execute("SELECT id, 2 + 3 AS five FROM owner WHERE id = 0")
    assert result.rows == [(0, 5)]


def test_count_distinct_on_join(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT COUNT(DISTINCT o.city) FROM car c, owner o "
        "WHERE c.ownerid = o.id AND c.year = 2000",
    )


def test_update_string_column_roundtrip(plain_engine):
    plain_engine.execute(
        "UPDATE owner SET city = 'Gatineau' WHERE city = 'Waterloo'"
    )
    rows = plain_engine.execute(
        "SELECT COUNT(*) FROM owner WHERE city = 'Gatineau'"
    ).rows
    assert rows[0][0] > 0


def test_not_between_and_not_in(stats_engine, mini_db):
    check_against_reference(
        stats_engine,
        mini_db,
        "SELECT id FROM car WHERE year NOT BETWEEN 1998 AND 2005 "
        "AND make NOT IN ('Toyota')",
    )
