"""Concurrency stress tests: many client sessions on one engine.

The contract under test (see the README's concurrency model):

* concurrent SELECTs return exactly the rows a sequential reference
  execution returns — row *content* is plan-independent, so comparisons
  sort rows unless the query carries a total ORDER BY;
* DML serialized between concurrent SELECT phases leaves the database,
  UDI counters and catalog in the same state a fully sequential engine
  reaches;
* per-client streams are order-stable: each session observes its own
  statements in order, and rerunning the same concurrent workload
  produces the same per-client row sets.
"""

from __future__ import annotations

import os
import random
import threading

import pytest

from repro import Engine, EngineConfig
from repro.executor import run_reference
from repro.sql import build_query_graph, parse_select
from tests.conftest import build_mini_db
from tests.harness.differential import (
    assert_same_final_state,
    run_torture_schedule,
)

WORKERS = 6

SELECTS = [
    "SELECT id, make FROM car WHERE make = 'Toyota'",
    "SELECT id, price FROM car WHERE price > 20000 AND year >= 2000",
    "SELECT make, model, COUNT(*) FROM car GROUP BY make, model",
    "SELECT o.name, c.id FROM car c, owner o WHERE c.ownerid = o.id "
    "AND c.make = 'Honda'",
    "SELECT id FROM car WHERE model IN ('Camry', 'Civic', 'F150')",
    "SELECT id, year FROM car WHERE year BETWEEN 1998 AND 2004 "
    "ORDER BY id",
    "SELECT AVG(price) FROM car WHERE make = 'Ford'",
    "SELECT o.city, COUNT(*) FROM owner o, car c "
    "WHERE c.ownerid = o.id GROUP BY o.city",
]


def fastpath_engine(seed: int = 13) -> Engine:
    db = build_mini_db(n_owners=80, n_cars=240, seed=seed)
    config = EngineConfig.fastpath(
        s_max=0.3, sample_size=120, migration_interval=5
    )
    return Engine(db, config)


def reference_rows(engine: Engine, sql: str):
    block = build_query_graph(parse_select(sql), engine.database)
    return sorted(run_reference(block, engine.database))


def test_concurrent_selects_match_reference():
    engine = fastpath_engine()
    statements = SELECTS * 6  # repeats exercise the shared plan cache
    results = engine.execute_many(statements, workers=WORKERS)
    assert len(results) == len(statements)
    for sql, result in zip(statements, results):
        assert sorted(result.rows) == reference_rows(engine, sql), sql


def test_execute_many_results_align_with_input_order():
    engine = fastpath_engine()
    statements = [
        f"SELECT COUNT(*) FROM car WHERE year >= {year}"
        for year in range(1995, 2008)
    ]
    results = engine.execute_many(statements, workers=4)
    sequential = [
        engine.execute(sql).rows for sql in statements
    ]
    assert [r.rows for r in results] == sequential


def test_mixed_dml_phases_match_sequential_engine():
    """Concurrent SELECT phases with serialized DML between them end in
    the same state a fully sequential engine reaches."""
    concurrent = fastpath_engine(seed=21)
    sequential = fastpath_engine(seed=21)

    dml_phases = [
        "UPDATE car SET price = price * 1.1 WHERE year > 2000",
        "DELETE FROM car WHERE price < 4000",
        "INSERT INTO car (id, ownerid, make, model, year, price) "
        "VALUES (9001, 3, 'Toyota', 'Camry', 2006, 31000.0)",
        "UPDATE owner SET salary = salary + 100 WHERE city = 'Ottawa'",
    ]

    for dml in dml_phases:
        results = concurrent.execute_many(SELECTS, workers=WORKERS)
        for sql, result in zip(SELECTS, results):
            assert sorted(result.rows) == reference_rows(concurrent, sql), sql
        for sql in SELECTS:
            sequential.execute(sql)

        r_con = concurrent.execute(dml)
        r_seq = sequential.execute(dml)
        assert r_con.affected_rows == r_seq.affected_rows, dml

    # Final data (content-hashed) and accounting state must agree exactly.
    assert_same_final_state(concurrent, sequential)
    # RUNSTATS (the write-locked catalog path) lands identical catalog
    # cardinalities because the data states are identical.
    concurrent.collect_general_statistics()
    sequential.collect_general_statistics()
    for name in concurrent.database.table_names():
        stats_con = concurrent.catalog.table_stats(name)
        stats_seq = sequential.catalog.table_stats(name)
        assert stats_con is not None and stats_seq is not None, name
        assert stats_con.cardinality == stats_seq.cardinality, name
        assert stats_con.cardinality == float(
            concurrent.database.table(name).row_count
        ), name
    # Same rows at the end, through both engines.
    final = "SELECT id, make, price FROM car ORDER BY id"
    assert (
        concurrent.execute(final).rows == sequential.execute(final).rows
    )


def test_streams_are_order_stable_and_deterministic():
    """Each client stream sees its own statements in order; rerunning the
    workload on a fresh engine reproduces every per-client row set."""
    streams = [
        ["SELECT COUNT(*) FROM car WHERE make = 'Toyota'"] + SELECTS[:4],
        SELECTS[2:6] + ["SELECT COUNT(*) FROM owner"],
        SELECTS[4:] + SELECTS[:2],
    ]

    def run_once():
        engine = fastpath_engine(seed=5)
        out = engine.execute_streams(streams, workers=len(streams))
        return engine, out

    engine_a, run_a = run_once()
    _, run_b = run_once()
    assert len(run_a) == len(streams)
    for stream, results_a, results_b in zip(streams, run_a, run_b):
        assert len(results_a) == len(stream)
        for sql, ra, rb in zip(stream, results_a, results_b):
            # Read-only workload: content must match the reference and be
            # reproducible across runs.
            want = reference_rows(engine_a, sql)
            assert sorted(ra.rows) == want, sql
            assert sorted(rb.rows) == want, sql


def test_sessions_count_their_own_statements():
    engine = fastpath_engine()
    s1, s2 = engine.session(), engine.session()
    s1.execute(SELECTS[0])
    s1.execute(SELECTS[1])
    s2.execute(SELECTS[2])
    assert s1.statements_executed == 2
    assert s2.statements_executed == 1
    assert engine.statements_executed == 3
    assert s1.session_id != s2.session_id


def test_cached_plan_execution_uses_private_nodes():
    """Two executions of one cached plan must not share actual_* slots."""
    engine = fastpath_engine()
    sql = SELECTS[0]
    first = engine.execute(sql)
    second = engine.execute(sql)
    assert second.jits_report is not None
    assert second.jits_report.plan_cache_hit
    assert first.plan is not None and second.plan is not None
    assert first.plan is not second.plan
    assert first.plan.actual_rows == second.plan.actual_rows
    # The archived (cached) copy stays un-annotated for the next client.
    template = repr(parse_select(sql))
    cached = engine.plan_cache._entries[template].optimized
    assert cached.root.actual_rows is None


def test_mixed_readers_and_writer_complete_without_deadlock():
    """A writer-preferring lock must drain a read-heavy mix cleanly."""
    engine = fastpath_engine()
    statements = SELECTS * 4 + ["DELETE FROM car WHERE price < 3000"]
    results = engine.execute_many(statements, workers=WORKERS)
    assert len(results) == len(statements)
    # The delete ran exclusively against a consistent table; afterwards
    # no row below the cutoff survives.
    after = engine.execute("SELECT COUNT(*) FROM car WHERE price < 3000")
    assert after.rows == [(0,)]


@pytest.mark.parametrize("workers", [1, 4])
def test_explain_concurrent_with_selects(workers):
    engine = fastpath_engine()
    done = []

    def explain_loop():
        for _ in range(5):
            text = engine.explain(SELECTS[1])
            assert "rows=" in text
        done.append(True)

    t = threading.Thread(target=explain_loop)
    t.start()
    engine.execute_many(SELECTS * 2, workers=workers)
    t.join(timeout=30)
    assert done == [True]


# ----------------------------------------------------------------------
# Per-table write locks: disjoint-table DML truly runs concurrently,
# and must land exactly the sequential outcome.
# ----------------------------------------------------------------------
CAR_DML = [
    "UPDATE car SET price = price * 1.02 WHERE year >= 2000",
    "UPDATE car SET price = price + 250 WHERE make = 'Toyota'",
    "DELETE FROM car WHERE price < 4200",
    "INSERT INTO car (id, ownerid, make, model, year, price) "
    "VALUES (9100, 5, 'Honda', 'Civic', 2005, 18500.0)",
    "UPDATE car SET year = year + 1 WHERE model = 'Civic'",
    "DELETE FROM car WHERE price > 90000",
]
OWNER_DML = [
    "UPDATE owner SET salary = salary + 100 WHERE city = 'Ottawa'",
    "UPDATE owner SET salary = salary * 1.01 WHERE salary > 5000",
    "UPDATE owner SET salary = salary - 50 WHERE city = 'Toronto'",
    "INSERT INTO owner (id, name, salary, city) "
    "VALUES (9200, 'owner_9200', 6500.0, 'Waterloo')",
    "UPDATE owner SET salary = salary + 1 WHERE name = 'owner_9200'",
]
def test_disjoint_table_dml_streams_match_sequential():
    """CAR-only and OWNER-only DML streams run under per-table write
    locks; the final data, UDI accounting, clock and RUNSTATS catalog
    must equal a fully sequential execution of the same streams."""
    concurrent = fastpath_engine(seed=31)
    sequential = fastpath_engine(seed=31)
    streams = [list(CAR_DML), list(OWNER_DML)]

    out = concurrent.execute_streams(streams, workers=2)
    seq_out = [[sequential.execute(sql) for sql in s] for s in streams]

    # Each table is touched by exactly one stream, so per-statement
    # affected-row counts are interleaving-independent.
    for got_stream, want_stream, stream in zip(out, seq_out, streams):
        for got, want, sql in zip(got_stream, want_stream, stream):
            assert got.affected_rows == want.affected_rows, sql

    assert_same_final_state(concurrent, sequential)

    # RUNSTATS (database-exclusive) lands identical catalog state.
    concurrent.collect_general_statistics()
    sequential.collect_general_statistics()
    for name in concurrent.database.table_names():
        stats_con = concurrent.catalog.table_stats(name)
        stats_seq = sequential.catalog.table_stats(name)
        assert stats_con is not None and stats_seq is not None, name
        assert stats_con.cardinality == stats_seq.cardinality, name


def test_multi_table_dml_with_migration_stress():
    """DML on both tables + SELECT streams + frequent migration ticks,
    all concurrent: must drain without deadlock and leave the sequential
    data state."""

    def build() -> Engine:
        db = build_mini_db(n_owners=80, n_cars=240, seed=31)
        config = EngineConfig.fastpath(
            s_max=0.3, sample_size=120, migration_interval=2
        )
        return Engine(db, config)

    streams = [
        list(CAR_DML),
        list(OWNER_DML),
        list(SELECTS),
        list(reversed(SELECTS)),
    ]
    concurrent = build()
    holder = {}

    def run():
        holder["out"] = concurrent.execute_streams(streams, workers=4)

    t = threading.Thread(target=run)
    t.start()
    t.join(timeout=120)
    assert not t.is_alive(), "concurrent workload deadlocked"
    assert [len(batch) for batch in holder["out"]] == [
        len(stream) for stream in streams
    ]

    sequential = build()
    for stream in streams:
        for sql in stream:
            sequential.execute(sql)
    assert_same_final_state(concurrent, sequential)
    # The JITS pipeline actually ran during the stress.
    assert concurrent.jits.total_collections > 0


# ----------------------------------------------------------------------
# Snapshot-isolation torture schedules: N writer threads hammer the
# tables with chunk-local DML while M reader threads SELECT (and run
# RUNSTATS) on pinned MVCC snapshots; every reader result is validated
# against a sequential replay at its pinned publish stamps.
# ----------------------------------------------------------------------
#: CI sets REPRO_TORTURE_SCHEDULES=200 for the stress sweep; the default
#: keeps local runs quick.
TORTURE_SCHEDULES = int(os.environ.get("REPRO_TORTURE_SCHEDULES", "8"))

TORTURE_READS = [
    "SELECT id, price FROM car WHERE price > 15000",
    "SELECT id, make FROM car WHERE make = 'Toyota'",
    "SELECT COUNT(*) FROM car",
    "SELECT make, COUNT(*) FROM car GROUP BY make",
    "SELECT id, year FROM car WHERE year BETWEEN 1998 AND 2004",
    "SELECT id, salary FROM owner WHERE salary > 5000",
    "SELECT city, COUNT(*) FROM owner GROUP BY city",
    "SELECT o.name, c.id FROM car c, owner o WHERE c.ownerid = o.id "
    "AND c.price > 25000",
]


def _torture_writer_streams(rng: random.Random, n_writers: int,
                            dml_per_writer: int, n_cars: int,
                            n_owners: int):
    """Seeded single-table, chunk-local DML streams (one per writer)."""
    streams = []
    fresh_id = 50_000
    for w in range(n_writers):
        stream = []
        for _ in range(dml_per_writer):
            kind = rng.randrange(5)
            if kind == 0:
                lo = rng.randrange(n_cars)
                stream.append(
                    "UPDATE car SET price = price + "
                    f"{rng.randrange(1, 500)} "
                    f"WHERE id BETWEEN {lo} AND {lo + rng.randrange(4, 24)}"
                )
            elif kind == 1:
                lo = rng.randrange(n_owners)
                stream.append(
                    "UPDATE owner SET salary = salary + "
                    f"{rng.randrange(1, 90)} "
                    f"WHERE id BETWEEN {lo} AND {lo + rng.randrange(2, 12)}"
                )
            elif kind == 2:
                lo = rng.randrange(n_cars)
                stream.append(
                    f"DELETE FROM car WHERE id BETWEEN {lo} AND {lo + 1}"
                )
            elif kind == 3:
                fresh_id += 1
                stream.append(
                    "INSERT INTO car (id, ownerid, make, model, year, price)"
                    f" VALUES ({fresh_id}, {rng.randrange(n_owners)}, "
                    f"'Toyota', 'Camry', {1995 + rng.randrange(12)}, "
                    f"{rng.randrange(5_000, 40_000)}.0)"
                )
            else:
                year = 1995 + rng.randrange(12)
                stream.append(
                    "UPDATE car SET year = year + 1 "
                    f"WHERE year = {year} AND id < {rng.randrange(40, n_cars)}"
                )
        streams.append(stream)
    return streams


def _run_torture(seed: int, scan_workers: int = 0) -> None:
    n_owners, n_cars = 80, 240
    rng = random.Random(seed)
    streams = _torture_writer_streams(
        rng, n_writers=3, dml_per_writer=5, n_cars=n_cars, n_owners=n_owners
    )

    def base_config() -> EngineConfig:
        config = EngineConfig.with_jits(s_max=0.3, sample_size=100)
        # Tiny COW chunks so the mini tables span many chunks and the
        # chunk-local DML actually exercises partial-copy publishes.
        config.chunk_rows = 32
        config.snapshot_retention = 4
        if scan_workers:
            config.scan_workers = scan_workers
            config.parallel_threshold_rows = 64
        return config

    report = run_torture_schedule(
        build_db=lambda: build_mini_db(
            n_owners=n_owners, n_cars=n_cars, seed=7
        ),
        base_config=base_config,
        writer_streams=streams,
        reader_pool=TORTURE_READS,
        seed=seed,
        n_readers=3,
        reads_per_reader=7,
        runstats_every=4,
    )
    assert report.dml_executed == sum(len(s) for s in streams)
    assert report.reads_validated > 0
    assert report.runstats_passes > 0


@pytest.mark.parametrize("seed", range(TORTURE_SCHEDULES))
def test_snapshot_isolation_torture_threaded(seed):
    """Readers on pinned snapshots must equal sequential replay at their
    pinned publish stamps while writers run concurrently."""
    _run_torture(seed)


@pytest.mark.parametrize("seed", range(max(1, TORTURE_SCHEDULES // 4)))
def test_snapshot_isolation_torture_process(seed):
    """Same isolation contract with the process-parallel scan pool in
    the loop: reader shards dispatch against per-epoch shm exports."""
    _run_torture(seed + 1000, scan_workers=2)


def test_stats_snapshot_consistent_under_concurrent_writes():
    """stats_snapshot() must never return a torn view while another
    session keeps publishing new archive/history/catalog epochs."""
    engine = fastpath_engine(seed=3)
    stop = threading.Event()

    def writer():
        session = engine.session()
        i = 0
        while not stop.is_set():
            session.execute(SELECTS[i % len(SELECTS)])
            i += 1

    t = threading.Thread(target=writer)
    t.start()
    last_statements = -1
    try:
        for _ in range(30):
            snap = engine.stats_snapshot()
            jits = snap["jits"]
            # Internal consistency: every histogram carries at least one
            # cell, so a snapshot mixing two epochs' archive fields would
            # eventually break this invariant.
            if jits["archive_histograms"] > 0:
                assert jits["archive_cells"] >= jits["archive_histograms"]
            statements = snap["engine"]["statements_executed"]
            assert statements >= last_statements
            last_statements = statements
    finally:
        stop.set()
        t.join(timeout=60)
    assert not t.is_alive()
