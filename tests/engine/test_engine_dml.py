"""Engine DML and DDL statements."""

import pytest

from repro import Engine, EngineConfig
from repro.errors import BindingError, CatalogError, ExecutionError


def count(engine, sql):
    return engine.execute(sql).rows[0][0]


def test_insert_rows(plain_engine):
    before = count(plain_engine, "SELECT COUNT(*) FROM owner")
    result = plain_engine.execute(
        "INSERT INTO owner (id, name, salary, city) VALUES "
        "(9001, 'neo', 999.0, 'Zion'), (9002, 'trinity', 998.0, 'Zion')"
    )
    assert result.statement_type == "insert"
    assert result.affected_rows == 2
    assert count(plain_engine, "SELECT COUNT(*) FROM owner") == before + 2
    rows = plain_engine.execute(
        "SELECT name FROM owner WHERE city = 'Zion'"
    ).rows
    assert sorted(rows) == [("neo",), ("trinity",)]


def test_insert_schema_order(plain_engine):
    plain_engine.execute(
        "INSERT INTO owner VALUES (9100, 'morpheus', 1000.0, 'Zion')"
    )
    assert count(
        plain_engine, "SELECT COUNT(*) FROM owner WHERE id = 9100"
    ) == 1


def test_insert_arity_mismatch(plain_engine):
    with pytest.raises(BindingError):
        plain_engine.execute("INSERT INTO owner (id, name) VALUES (1, 'x', 3)")


def test_update_constant(plain_engine):
    result = plain_engine.execute(
        "UPDATE owner SET city = 'Kanata' WHERE city = 'Ottawa'"
    )
    assert result.statement_type == "update"
    assert result.affected_rows > 0
    assert count(
        plain_engine, "SELECT COUNT(*) FROM owner WHERE city = 'Ottawa'"
    ) == 0


def test_update_expression_per_row(plain_engine):
    before = plain_engine.execute(
        "SELECT salary FROM owner WHERE id = 0"
    ).rows[0][0]
    plain_engine.execute("UPDATE owner SET salary = salary * 2 WHERE id = 0")
    after = plain_engine.execute(
        "SELECT salary FROM owner WHERE id = 0"
    ).rows[0][0]
    assert after == pytest.approx(before * 2)


def test_update_int_column_rounds(plain_engine):
    plain_engine.execute("UPDATE car SET year = year + 1 WHERE id = 0")
    # Still an integer value.
    year = plain_engine.execute("SELECT year FROM car WHERE id = 0").rows[0][0]
    assert isinstance(year, int)


def test_update_without_where_touches_all(plain_engine):
    n = count(plain_engine, "SELECT COUNT(*) FROM owner")
    result = plain_engine.execute("UPDATE owner SET salary = salary + 1")
    assert result.affected_rows == n


def test_update_unknown_column(plain_engine):
    with pytest.raises(BindingError):
        plain_engine.execute("UPDATE owner SET ghost = 1")


def test_update_type_mismatch(plain_engine):
    with pytest.raises(ExecutionError):
        plain_engine.execute("UPDATE owner SET name = 5 WHERE id = 0")


def test_update_bumps_udi(plain_engine, mini_db):
    before = mini_db.table("owner").udi_total
    plain_engine.execute("UPDATE owner SET salary = salary WHERE id < 10")
    assert mini_db.table("owner").udi_total == before + 10


def test_delete(plain_engine):
    before = count(plain_engine, "SELECT COUNT(*) FROM car")
    result = plain_engine.execute("DELETE FROM car WHERE make = 'Honda'")
    assert result.statement_type == "delete"
    assert result.affected_rows > 0
    assert count(plain_engine, "SELECT COUNT(*) FROM car") == (
        before - result.affected_rows
    )
    assert count(
        plain_engine, "SELECT COUNT(*) FROM car WHERE make = 'Honda'"
    ) == 0


def test_delete_with_or_residual(plain_engine):
    result = plain_engine.execute(
        "DELETE FROM owner WHERE id = 1 OR id = 2"
    )
    assert result.affected_rows == 2


def test_create_insert_select_roundtrip():
    engine = Engine(config=EngineConfig.traditional())
    engine.execute(
        "CREATE TABLE pets (id INT PRIMARY KEY, name STRING, age INT)"
    )
    engine.execute("INSERT INTO pets VALUES (1, 'rex', 4), (2, 'milo', 2)")
    rows = engine.execute("SELECT name FROM pets WHERE age > 3").rows
    assert rows == [("rex",)]


def test_create_duplicate_table():
    engine = Engine(config=EngineConfig.traditional())
    engine.execute("CREATE TABLE t (id INT)")
    with pytest.raises(CatalogError):
        engine.execute("CREATE TABLE t (id INT)")


def test_drop_table_clears_state(jits_engine, mini_db):
    jits_engine.execute("SELECT id FROM car WHERE make = 'Toyota'")
    jits_engine.execute("DROP TABLE car")
    assert not mini_db.has_table("car")
    with pytest.raises(BindingError):
        jits_engine.execute("SELECT id FROM car")


def test_create_index_statement(plain_engine, mini_db):
    plain_engine.execute("CREATE INDEX iy ON car (year)")
    assert mini_db.indexes("car").hash_on("year") is not None
    plain_engine.execute("CREATE INDEX iy2 ON car (year) USING SORTED")
    assert mini_db.indexes("car").sorted_on("year") is not None
