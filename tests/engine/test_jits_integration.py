"""Integration: JITS inside the engine — the Table 3 scenario in miniature."""

import pytest

from repro import Engine, EngineConfig
from tests.conftest import build_mini_db

QUERY = (
    "SELECT o.name, c.price FROM car c, owner o "
    "WHERE c.ownerid = o.id AND c.make = 'Toyota' AND c.model = 'Camry' "
    "AND o.salary > 5000"
)


def fresh_engine(jits: bool, **kwargs) -> Engine:
    db = build_mini_db(n_owners=400, n_cars=1600, seed=3)
    if jits:
        config = EngineConfig.with_jits(sample_size=500, **kwargs)
    else:
        config = EngineConfig.traditional()
    return Engine(db, config)


def test_results_identical_with_and_without_jits():
    plain = fresh_engine(jits=False).execute(QUERY)
    jits = fresh_engine(jits=True, always_collect=True).execute(QUERY)
    assert sorted(plain.rows) == sorted(jits.rows)


def test_jits_improves_cardinality_estimates():
    """Case 1-a vs 1-b of Table 3: with no initial statistics, JITS turns
    a wildly wrong root estimate into a good one."""
    plain = fresh_engine(jits=False).execute(QUERY)
    jits = fresh_engine(jits=True, always_collect=True).execute(QUERY)
    actual = len(plain.rows)

    def root_error(result):
        est = result.plan.est_rows
        return max(est, actual + 1e-9) / max(min(est, actual), 1e-9)

    assert root_error(jits) < root_error(plain)


def test_jits_reduces_modeled_execution_cost():
    plain = fresh_engine(jits=False).execute(QUERY)
    jits = fresh_engine(jits=True, always_collect=True).execute(QUERY)
    assert jits.modeled_execution_cost() <= plain.modeled_execution_cost()


def test_jits_compile_overhead_exists():
    plain = fresh_engine(jits=False).execute(QUERY)
    jits = fresh_engine(jits=True, always_collect=True).execute(QUERY)
    assert jits.compile_time > plain.compile_time


def test_archive_reused_on_second_query():
    engine = fresh_engine(jits=True, s_max=0.3)
    engine.execute(QUERY)
    first_archive = len(engine.jits.archive)
    result = engine.execute(QUERY)
    # No new sampling needed once the archive answers accurately, or at
    # worst the same tables resampled; the archive persists either way.
    assert len(engine.jits.archive) >= first_archive
    assert engine.jits.archive.has("car", ("make", "model"))


def test_collection_rate_decays_over_repeats():
    engine = fresh_engine(jits=True, s_max=0.4)
    collections = []
    for _ in range(6):
        result = engine.execute(QUERY)
        collections.append(len(result.jits_report.tables_collected))
    assert collections[0] > 0
    assert collections[-1] == 0  # stabilized


def test_data_churn_retriggers_collection():
    engine = fresh_engine(jits=True, s_max=0.4)
    for _ in range(4):
        engine.execute(QUERY)
    assert len(engine.execute(QUERY).jits_report.tables_collected) == 0
    # Touch most of CAR: UDI explodes, s2 forces a recollection.
    engine.execute("UPDATE car SET price = price * 2")
    report = engine.execute(QUERY).jits_report
    assert "car" in report.tables_collected


def test_migration_publishes_catalog_stats():
    engine = fresh_engine(jits=True, s_max=0.0)
    engine.config.jits.migration_interval = 2
    engine.jits.config.migration_interval = 2
    for _ in range(4):
        engine.execute(QUERY)
    assert engine.jits.total_migrations > 0
    assert engine.catalog.column_stats("car", "make") is not None
