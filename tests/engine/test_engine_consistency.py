"""Full-pipeline consistency: JITS must never change query answers.

Unlike tests/executor/test_consistency.py (which drives the optimizer and
executor directly), these go through ``Engine.execute`` with JITS enabled,
so sampling, archive reuse, migration and feedback are all in the loop
while results are compared against the naive reference executor.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine, EngineConfig
from repro.executor import run_reference
from repro.sql import build_query_graph, parse_select
from tests.conftest import MAKES_MODELS, build_mini_db

_ENGINE = None


def get_engine() -> Engine:
    global _ENGINE
    if _ENGINE is None:
        db = build_mini_db(n_owners=80, n_cars=240, seed=13)
        _ENGINE = Engine(
            db, EngineConfig.with_jits(s_max=0.3, sample_size=120,
                                       migration_interval=5)
        )
    return _ENGINE


MAKES = list(MAKES_MODELS)
MODELS = [m for models in MAKES_MODELS.values() for m in models]


@st.composite
def car_query(draw):
    parts = []
    if draw(st.booleans()):
        parts.append(f"make = '{draw(st.sampled_from(MAKES))}'")
    if draw(st.booleans()):
        parts.append(f"model = '{draw(st.sampled_from(MODELS))}'")
    if draw(st.booleans()):
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "<>"]))
        year = draw(st.integers(min_value=1994, max_value=2008))
        parts.append(f"year {op} {year}")
    if draw(st.booleans()):
        lo = draw(st.integers(min_value=0, max_value=50_000))
        parts.append(f"price > {lo}")
    where = f" WHERE {' AND '.join(parts)}" if parts else ""
    if draw(st.booleans()):
        return f"SELECT id, make FROM car{where}"
    return (
        "SELECT o.name, c.id FROM car c, owner o "
        f"WHERE c.ownerid = o.id{' AND ' + ' AND '.join(parts) if parts else ''}"
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(car_query())
def test_engine_with_jits_matches_reference(sql):
    engine = get_engine()
    result = engine.execute(sql)
    block = build_query_graph(parse_select(sql), engine.database)
    want = run_reference(block, engine.database)
    assert sorted(result.rows) == sorted(want), engine.explain(sql)


def test_engine_consistency_after_churn():
    """Same guarantee while the data is mutating under JITS."""
    engine = get_engine()
    sql = (
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry' "
        "AND price > 10000"
    )
    for round_no in range(4):
        engine.execute(
            f"UPDATE car SET price = price * 1.1 WHERE year > {1998 + round_no}"
        )
        result = engine.execute(sql)
        block = build_query_graph(parse_select(sql), engine.database)
        assert sorted(result.rows) == sorted(
            run_reference(block, engine.database)
        )
