"""Session edge cases the network server relies on.

The server maps every connection to a session, keeps serving after a
statement fails, and calls ``execute_many``/``execute_streams``-shaped
paths with whatever the clients send — including nothing at all.
"""

import pytest

from repro import (
    CatalogError,
    ConfigError,
    Engine,
    EngineConfig,
    ReproError,
    SqlSyntaxError,
)
from tests.conftest import build_mini_db


def make_engine(seed: int = 9) -> Engine:
    return Engine(
        build_mini_db(n_owners=40, n_cars=120, seed=seed),
        EngineConfig.traditional(),
    )


def test_execute_many_empty_statement_list():
    engine = make_engine()
    assert engine.execute_many([]) == []
    assert engine.execute_many([], workers=4) == []
    assert engine.statements_executed == 0


def test_execute_streams_empty_and_uneven():
    engine = make_engine()
    assert engine.execute_streams([]) == []
    streams = [
        [],
        ["SELECT COUNT(*) FROM car"],
        [],
        [
            "SELECT COUNT(*) FROM owner",
            "SELECT COUNT(*) FROM car WHERE year >= 2000",
            "SELECT id FROM owner WHERE id < 3",
        ],
    ]
    results = engine.execute_streams(streams, workers=4)
    assert [len(r) for r in results] == [0, 1, 0, 3]
    assert results[1][0].rows == [(120,)]
    assert results[3][0].rows == [(40,)]


def test_execute_streams_all_empty():
    engine = make_engine()
    results = engine.execute_streams([[], [], []], workers=3)
    assert results == [[], [], []]
    assert engine.statements_executed == 0


def test_invalid_worker_counts_raise_config_error():
    engine = make_engine()
    with pytest.raises(ConfigError):
        engine.execute_many(["SELECT COUNT(*) FROM car"] * 2, workers=0)
    with pytest.raises(ConfigError):
        EngineConfig(default_workers=0)


def test_error_mid_stream_leaves_session_usable():
    engine = make_engine()
    session = engine.session()
    assert session.execute("SELECT COUNT(*) FROM car").rows == [(120,)]
    with pytest.raises(SqlSyntaxError):
        session.execute("SELECT COUNT(* FROM car")
    with pytest.raises(CatalogError):
        session.execute("INSERT INTO nosuch (id) VALUES (1)")
    with pytest.raises(ReproError):
        session.execute("SELECT nosuchcolumn FROM car")
    # The session keeps serving reads and writes after every failure...
    result = session.execute("DELETE FROM car WHERE price < 4000")
    assert result.statement_type == "delete"
    assert session.execute("SELECT COUNT(*) FROM car").rows == [
        (120 - result.affected_rows,)
    ]
    # ...and its failed statements left no pending UDI deltas behind.
    assert len(session.shard) == 0


def test_failed_write_does_not_leak_udi_into_next_statement():
    engine = make_engine()
    session = engine.session()
    table = engine.database.table("car")
    before = table.udi_total
    with pytest.raises(ReproError):
        session.execute("UPDATE car SET nosuch = 1 WHERE id < 5")
    assert table.udi_total == before
    deleted = session.execute("DELETE FROM car WHERE id < 5").affected_rows
    assert table.udi_total == before + deleted


def test_closed_session_rejects_statements():
    engine = make_engine()
    session = engine.session()
    session.close()
    with pytest.raises(ReproError, match="closed"):
        session.execute("SELECT COUNT(*) FROM car")
    with pytest.raises(ReproError, match="closed"):
        session.explain("SELECT COUNT(*) FROM car")
    # Other sessions on the same engine are unaffected.
    assert engine.execute("SELECT COUNT(*) FROM car").rows == [(120,)]
