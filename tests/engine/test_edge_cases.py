"""Engine edge cases: empty tables, single rows, degenerate queries."""

import pytest

from repro import Engine, EngineConfig


@pytest.fixture
def empty_engine():
    engine = Engine(config=EngineConfig.traditional())
    engine.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, name STRING, v FLOAT)"
    )
    return engine


def test_select_from_empty_table(empty_engine):
    result = empty_engine.execute("SELECT id, name FROM t WHERE v > 1")
    assert result.rows == []


def test_aggregate_empty_table(empty_engine):
    result = empty_engine.execute("SELECT COUNT(*), SUM(v) FROM t")
    assert result.rows == [(0, 0)]


def test_group_by_empty_table(empty_engine):
    result = empty_engine.execute(
        "SELECT name, COUNT(*) FROM t GROUP BY name"
    )
    assert result.rows == []


def test_join_with_empty_table(empty_engine):
    empty_engine.execute("CREATE TABLE u (id INT PRIMARY KEY, tid INT)")
    empty_engine.execute("INSERT INTO u VALUES (1, 1), (2, 2)")
    result = empty_engine.execute(
        "SELECT u.id FROM u, t WHERE u.tid = t.id"
    )
    assert result.rows == []


def test_runstats_on_empty_table(empty_engine):
    elapsed = empty_engine.collect_general_statistics(tables=["t"])
    assert elapsed >= 0
    stats = empty_engine.catalog.table_stats("t")
    assert stats.cardinality == 0


def test_jits_on_empty_table():
    engine = Engine(config=EngineConfig.with_jits(always_collect=True))
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v FLOAT)")
    result = engine.execute("SELECT id FROM t WHERE v > 1 AND id < 5")
    assert result.rows == []


def test_update_delete_empty_table(empty_engine):
    assert empty_engine.execute("UPDATE t SET v = v + 1").affected_rows == 0
    assert empty_engine.execute("DELETE FROM t").affected_rows == 0


def test_single_row_table(empty_engine):
    empty_engine.execute("INSERT INTO t VALUES (1, 'only', 3.5)")
    empty_engine.collect_general_statistics(tables=["t"])
    result = empty_engine.execute(
        "SELECT name FROM t WHERE v BETWEEN 3 AND 4"
    )
    assert result.rows == [("only",)]
    agg = empty_engine.execute("SELECT MIN(v), MAX(v), AVG(v) FROM t")
    assert agg.rows == [(3.5, 3.5, 3.5)]


def test_order_by_empty_result(empty_engine):
    result = empty_engine.execute(
        "SELECT id, v FROM t WHERE v > 100 ORDER BY v DESC LIMIT 3"
    )
    assert result.rows == []


def test_distinct_empty(empty_engine):
    result = empty_engine.execute("SELECT DISTINCT name FROM t")
    assert result.rows == []


def test_select_all_rows_deleted(empty_engine):
    empty_engine.execute("INSERT INTO t VALUES (1, 'a', 1.0), (2, 'b', 2.0)")
    empty_engine.execute("DELETE FROM t WHERE id >= 1")
    result = empty_engine.execute("SELECT COUNT(*) FROM t")
    assert result.rows == [(0,)]
