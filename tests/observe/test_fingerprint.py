"""Statement fingerprinting: normalizer, P² sketch, bounded registry."""

import numpy as np
import pytest

from repro.observe import (
    SORT_KEYS,
    FingerprintRegistry,
    P2Quantile,
    fingerprint_statement,
    normalize_statement,
)
from repro.sql import parse


def norm(sql: str) -> str:
    return normalize_statement(parse(sql))


def key_of(sql: str) -> str:
    return fingerprint_statement(parse(sql))[0]


# ----------------------------------------------------------------------
# Normalizer
# ----------------------------------------------------------------------
def test_literals_collapse_to_one_fingerprint():
    a = "SELECT COUNT(*) FROM car WHERE price < 1000"
    b = "SELECT COUNT(*) FROM car WHERE price < 99999"
    assert norm(a) == norm(b)
    assert key_of(a) == key_of(b)
    assert "?" in norm(a)
    assert "1000" not in norm(a)


def test_in_lists_collapse_regardless_of_length():
    a = "SELECT id FROM car WHERE make IN ('Toyota')"
    b = "SELECT id FROM car WHERE make IN ('Toyota', 'Honda', 'Ford')"
    assert norm(a) == norm(b)
    assert "(?)" in norm(a)


def test_structure_still_distinguishes():
    assert key_of("SELECT COUNT(*) FROM car WHERE price < 10") != key_of(
        "SELECT COUNT(*) FROM car WHERE price > 10"
    )
    assert key_of("SELECT COUNT(*) FROM car") != key_of(
        "SELECT COUNT(*) FROM owner"
    )


def test_identifiers_case_insensitive():
    assert key_of("SELECT ID FROM CAR WHERE MAKE = 'x'") == key_of(
        "select id from car where make = 'y'"
    )


def test_multi_row_insert_collapses():
    one = norm("INSERT INTO car (id) VALUES (1)")
    many = norm("INSERT INTO car (id) VALUES (2), (3), (4)")
    assert one == many
    assert "VALUES (?)" in many


def test_update_delete_limit_normalize():
    assert norm("UPDATE car SET price = 5 WHERE id = 1") == norm(
        "UPDATE car SET price = 9 WHERE id = 77"
    )
    assert norm("DELETE FROM car WHERE id = 3") == norm(
        "DELETE FROM car WHERE id = 8"
    )
    assert norm("SELECT id FROM car LIMIT 5") == norm(
        "SELECT id FROM car LIMIT 50"
    )


# ----------------------------------------------------------------------
# P² streaming quantiles
# ----------------------------------------------------------------------
def test_p2_exact_below_five_observations():
    q = P2Quantile(0.5)
    for x in (5.0, 1.0, 3.0):
        q.add(x)
    assert q.value() == 3.0


@pytest.mark.parametrize("quantile", [0.5, 0.95])
def test_p2_tracks_numpy_percentile(quantile):
    rng = np.random.default_rng(11)
    data = rng.normal(100.0, 15.0, 5000)
    sketch = P2Quantile(quantile)
    for x in data:
        sketch.add(float(x))
    exact = float(np.percentile(data, quantile * 100.0))
    spread = float(data.max() - data.min())
    assert abs(sketch.value() - exact) < 0.05 * spread


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_aggregates_and_sorts():
    reg = FingerprintRegistry(capacity=16)
    for i in range(10):
        reg.record("k1", "SELECT ... ?", "SELECT", latency=0.002, rows_out=5)
    reg.record("k2", "UPDATE ... ?", "UPDATE", latency=0.5, rows_out=0)
    top = reg.top(limit=2, sort_by="executions")
    assert [t["key"] for t in top] == ["k1", "k2"]
    assert top[0]["executions"] == 10
    assert top[0]["rows_out"] == 50
    top_ms = reg.top(limit=1, sort_by="total_ms")
    assert top_ms[0]["key"] == "k2"
    assert reg.top(limit=1, offset=1, sort_by="total_ms")[0]["key"] == "k1"


def test_registry_rejects_unknown_sort_key():
    reg = FingerprintRegistry()
    with pytest.raises(ValueError):
        reg.top(sort_by="bogus")
    for key in SORT_KEYS:
        reg.top(sort_by=key)  # all advertised keys accepted


def test_registry_eviction_is_bounded_and_keeps_hot_entries():
    reg = FingerprintRegistry(capacity=32)
    reg.record("hot", "HOT", "SELECT", latency=0.001)
    for _ in range(99):
        reg.record("hot", "HOT", "SELECT", latency=0.001)
    for i in range(200):
        reg.record(f"cold{i}", f"COLD {i}", "SELECT", latency=0.001)
    assert len(reg) <= 32
    summary = reg.summary()
    assert summary["evicted"] > 0
    assert summary["recorded"] == 300
    assert reg.get("hot") is not None  # coldest-first eviction


def test_registry_errors_and_statement_truncation():
    reg = FingerprintRegistry()
    reg.record("e", "X" * 2000, "SELECT", latency=0.01, error=True)
    snap = reg.top(limit=1)[0]
    assert snap["errors"] == 1
    assert len(snap["statement"]) <= 512
