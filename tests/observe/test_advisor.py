"""JIT index advisor: create/drop hysteresis, modes, budget, audit."""

import pytest

from repro import Engine, EngineConfig
from repro.observe import IndexAdvisor
from tests.conftest import build_mini_db

HOT = "SELECT COUNT(*) FROM car WHERE make = 'Toyota'"
COLD = "SELECT COUNT(*) FROM owner WHERE id = 1"


def advisor_config(mode: str, **knobs) -> EngineConfig:
    config = EngineConfig.traditional()
    config.auto_index = mode
    config.auto_index_interval = knobs.pop("interval", 4)
    config.auto_index_budget = knobs.pop("budget", 3)
    config.auto_index_threshold = knobs.pop("threshold", 0.6)
    config.auto_index_drop_threshold = knobs.pop("drop_threshold", 0.2)
    assert not knobs
    return config


def drive(engine: Engine, sql: str, times: int) -> None:
    for _ in range(times):
        engine.execute(sql)


def test_auto_mode_creates_index_on_hot_equality_column():
    engine = Engine(build_mini_db(), advisor_config("auto"))
    try:
        assert engine.database.indexes("car").hash_on("make") is None
        before = engine.execute(HOT).rows
        drive(engine, HOT, 20)
        indexes = engine.database.indexes("car")
        assert indexes.hash_on("make") is not None
        advisor = engine.observe.advisor
        snap = advisor.snapshot()
        assert snap["created"] >= 1
        assert snap["live_auto_indexes"] >= 1
        creates = [e for e in snap["audit"] if e["action"] == "create"]
        assert any(
            e["table"] == "car" and e["column"] == "make" for e in creates
        )
        # Results unchanged once the plan flips to the index.
        assert engine.execute(HOT).rows == before
    finally:
        engine.shutdown()


def test_advise_mode_records_but_performs_no_ddl():
    engine = Engine(build_mini_db(), advisor_config("advise"))
    try:
        drive(engine, HOT, 20)
        assert engine.database.indexes("car").hash_on("make") is None
        snap = engine.observe.advisor.snapshot()
        assert snap["created"] == 0
        assert snap["advised"] >= 1
        assert any(
            e["action"] == "advise_create" and e["column"] == "make"
            for e in snap["audit"]
        )
    finally:
        engine.shutdown()


def test_budget_caps_live_auto_indexes():
    engine = Engine(
        build_mini_db(), advisor_config("auto", budget=1, threshold=0.5)
    )
    try:
        # Two equally hot unindexed columns; only one create allowed.
        for _ in range(12):
            engine.execute(HOT)
            engine.execute("SELECT COUNT(*) FROM car WHERE model = 'Civic'")
        snap = engine.observe.advisor.snapshot()
        assert snap["created"] == 1
        assert snap["live_auto_indexes"] == 1
        indexes = engine.database.indexes("car")
        built = [
            c for c in ("make", "model") if indexes.hash_on(c) is not None
        ]
        assert len(built) == 1
    finally:
        engine.shutdown()


def test_auto_drop_after_heat_decays_below_hysteresis_band():
    engine = Engine(build_mini_db(), advisor_config("auto"))
    try:
        drive(engine, HOT, 20)
        assert engine.database.indexes("car").hash_on("make") is not None
        # The column goes cold; EWMA decays across ticks until it falls
        # below drop_threshold (not merely below the create threshold).
        drive(engine, COLD, 40)
        snap = engine.observe.advisor.snapshot()
        assert snap["dropped"] >= 1
        assert engine.database.indexes("car").hash_on("make") is None
        assert any(e["action"] == "drop" for e in snap["audit"])
    finally:
        engine.shutdown()


def test_used_index_is_not_dropped():
    engine = Engine(build_mini_db(), advisor_config("auto"))
    try:
        drive(engine, HOT, 60)  # keeps probing after the create
        snap = engine.observe.advisor.snapshot()
        assert snap["created"] >= 1
        assert snap["dropped"] == 0
        assert engine.database.indexes("car").hash_on("make") is not None
    finally:
        engine.shutdown()


def test_sorted_index_refused_on_string_column():
    engine = Engine(build_mini_db(), advisor_config("auto", interval=1))
    try:
        advisor = engine.observe.advisor
        # Force overwhelming range heat on a STRING column: dictionary
        # codes do not follow string order, so the advisor must refuse.
        for _ in range(10):
            advisor.note_scan("car", "make", "range", 600, 1)
            advisor.maybe_tick(engine)
        assert engine.database.indexes("car").sorted_on("make") is None
        assert advisor.snapshot()["created"] == 0
    finally:
        engine.shutdown()


def test_advisor_validates_mode():
    with pytest.raises(ValueError):
        IndexAdvisor(mode="sometimes")


def test_never_drops_preexisting_indexes():
    engine = Engine(build_mini_db(), advisor_config("auto"))
    try:
        # car.ownerid (hash) and car.price (sorted) exist from the DBA;
        # heavy churn on other columns must never touch them.
        drive(engine, COLD, 40)
        indexes = engine.database.indexes("car")
        assert indexes.hash_on("ownerid") is not None
        assert indexes.sorted_on("price") is not None
        assert engine.observe.advisor.snapshot()["dropped"] == 0
    finally:
        engine.shutdown()
