"""Zone-map synopses: build correctness, refutation soundness, and
differential byte-identity of zone skipping across execution modes."""

import numpy as np
import pytest

from repro import Database, DataType, Engine, EngineConfig, make_schema
from repro.executor.parallel.kernels import PhysPredicate, predicate_mask
from repro.observe import ZoneMapStore, build_column_zones
from repro.observe.zonemap import ndv_from_bitmap, refuted_zones
from tests.conftest import build_mini_db
from tests.harness.differential import (
    MODES,
    canonical_result,
    run_differential,
    table_state,
)

ZONE_ROWS = 32
THRESHOLD = 64


def observing_config() -> EngineConfig:
    config = EngineConfig.traditional()
    config.observe = True
    config.zone_map_rows = ZONE_ROWS
    config.parallel_threshold_rows = THRESHOLD
    return config


def blind_config() -> EngineConfig:
    config = EngineConfig.traditional()
    config.parallel_threshold_rows = THRESHOLD
    return config


# Clustered (id), correlated (year/price) and unclustered (make) columns;
# interleaved UDI churn bumps versions mid-workload so later scans run
# against invalidated-and-rebuilt maps.
WORKLOAD = [
    "SELECT COUNT(*) FROM car WHERE id < 50",
    "SELECT id FROM car WHERE id BETWEEN 100 AND 140",
    "SELECT COUNT(*) FROM car WHERE id > 550",
    "SELECT COUNT(*) FROM car WHERE make = 'Toyota'",
    "SELECT COUNT(*) FROM car WHERE price < 10000",
    "INSERT INTO car (id, ownerid, make, model, year, price) "
    "VALUES (9001, 1, 'Ford', 'F150', 2001, 111.0), "
    "(9002, 2, 'Honda', 'Civic', 2002, 222.0)",
    "SELECT COUNT(*) FROM car WHERE id > 8000",
    "SELECT COUNT(*) FROM car WHERE id < 50",
    "UPDATE car SET price = 1.0 WHERE id < 10",
    "SELECT COUNT(*) FROM car WHERE price < 5.0",
    "DELETE FROM car WHERE id BETWEEN 580 AND 599",
    "SELECT COUNT(*) FROM car WHERE id BETWEEN 560 AND 620",
    "SELECT id FROM car WHERE id IN (3, 9001, 599)",
    "SELECT COUNT(*) FROM car WHERE year BETWEEN 1996 AND 1999",
]


# ----------------------------------------------------------------------
# Build correctness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dtype", ["int", "float"])
def test_build_column_zones_bounds_enclose_every_value(dtype):
    rng = np.random.default_rng(5)
    if dtype == "int":
        data = rng.integers(-(2**60), 2**60, 1000)
    else:
        data = rng.normal(0.0, 1e6, 1000)
    mins, maxs, bitmaps = build_column_zones(data, 64)
    n_zones = -(-len(data) // 64)
    assert len(mins) == len(maxs) == len(bitmaps) == n_zones
    for z in range(n_zones):
        chunk = data[z * 64 : (z + 1) * 64]
        assert mins[z] <= chunk.min()
        assert maxs[z] >= chunk.max()


def test_ndv_sketch_tracks_distinct_count():
    rng = np.random.default_rng(9)
    for true_ndv in (5, 100, 400):
        data = rng.choice(
            rng.normal(0, 1000, true_ndv), size=4000, replace=True
        )
        _, _, bitmaps = build_column_zones(data, 256)
        combined = np.bitwise_or.reduce(bitmaps, axis=0)
        est = ndv_from_bitmap(combined)
        assert 0.6 * true_ndv <= est <= 1.4 * true_ndv


# ----------------------------------------------------------------------
# Refutation soundness (seeded property test)
# ----------------------------------------------------------------------
def _random_pred(rng, data) -> PhysPredicate:
    op = rng.choice(["EQ", "NE", "IN", "LT", "LE", "GT", "GE", "BETWEEN"])
    lo, hi = float(data.min()), float(data.max())
    pick = lambda: float(rng.uniform(lo - 5, hi + 5))  # noqa: E731
    if op == "IN":
        values = tuple(sorted(pick() for _ in range(int(rng.integers(1, 4)))))
    elif op == "BETWEEN":
        a, b = sorted((pick(), pick()))
        values = (a, b)
    else:
        # Mix in exact data values so EQ/NE actually hit sometimes.
        values = (
            float(rng.choice(data)) if rng.random() < 0.5 else pick(),
        )
    return PhysPredicate("c", op, values)


def test_refuted_zones_never_refute_a_matching_row():
    rng = np.random.default_rng(1234)
    for trial in range(200):
        n = int(rng.integers(1, 500))
        zone_rows = int(rng.integers(1, 70))
        if rng.random() < 0.5:
            data = np.sort(rng.integers(0, 50, n)).astype(np.float64)
        else:
            data = rng.normal(0, 10, n)
        mins, maxs, _ = build_column_zones(data, zone_rows)
        pred = _random_pred(rng, data)
        mask = refuted_zones(mins, maxs, pred)
        if mask is None:
            continue
        for z in np.flatnonzero(mask):
            chunk = data[z * zone_rows : (z + 1) * zone_rows]
            assert not predicate_mask(chunk, pred).any(), (
                f"trial {trial}: {pred} refuted zone {z} "
                f"containing a matching row"
            )


def test_empty_eq_refutes_all_empty_ne_refutes_none():
    mins = np.array([0.0, 10.0])
    maxs = np.array([5.0, 15.0])
    assert refuted_zones(mins, maxs, PhysPredicate("c", "EQ", empty=True)).all()
    assert refuted_zones(mins, maxs, PhysPredicate("c", "NE", empty=True)) is None


# ----------------------------------------------------------------------
# Differential: skipping on vs off, and across execution modes
# ----------------------------------------------------------------------
def test_zone_skipping_matches_blind_engine_byte_identical():
    blind = Engine(build_mini_db(), blind_config())
    observing = Engine(build_mini_db(), observing_config())
    try:
        for sql in WORKLOAD:
            a = canonical_result(blind.execute(sql))
            b = canonical_result(observing.execute(sql))
            assert a == b, f"observe on/off diverged on: {sql}"
        assert table_state(blind) == table_state(observing)
        zm = observing.parallel.stats()["zone_maps"]
        assert zm["scans_pruned"] > 0
        assert zm["rows_skipped"] > 0
        assert zm["invalidations"] > 0  # UDI churn forced rebuilds
    finally:
        blind.shutdown()
        observing.shutdown()


def test_zone_skipping_differential_across_modes():
    engines = run_differential(
        WORKLOAD,
        build_db=build_mini_db,
        base_config=observing_config,
        modes=MODES,
        parallel_threshold_rows=THRESHOLD,
    )
    try:
        zm = engines["process"].parallel.stats()["zone_maps"]
        assert zm["scans_considered"] > 0
    finally:
        for engine in engines.values():
            engine.shutdown()


# ----------------------------------------------------------------------
# Epoch / identity pinning
# ----------------------------------------------------------------------
def test_drop_create_same_name_fails_identity_check():
    db = Database("t")
    schema = make_schema("t", [("id", DataType.INT)], primary_key="id")
    db.create_table(schema)
    first = db.table("t")
    first.insert_columns({"id": np.arange(100, dtype=np.int64)})

    store = ZoneMapStore(zone_rows=16)
    zmap = store.ensure(first, ["id"])
    assert zmap is not None and store.get_valid(first) is zmap

    db.drop_table("t")
    db.create_table(make_schema("t", [("id", DataType.INT)], primary_key="id"))
    second = db.table("t")
    second.insert_columns({"id": np.arange(100, dtype=np.int64)})

    # Same name, same row count — still a different table object: the
    # stale map must not serve the new incarnation.
    assert not zmap.valid_for(second)
    assert store.get_valid(second) is None
    fresh = store.ensure(second, ["id"])
    assert fresh is not zmap and fresh.valid_for(second)


def test_udi_version_bump_invalidates():
    engine = Engine(build_mini_db(), observing_config())
    try:
        store = engine.observe.zone_maps
        engine.execute("SELECT COUNT(*) FROM car WHERE id < 50")
        table = engine.database.table("car")
        assert store.get_valid(table) is not None
        engine.execute("UPDATE car SET price = 2.0 WHERE id = 1")
        assert store.get_valid(engine.database.table("car")) is None
        # Next predicated scan rebuilds and stays correct.
        result = engine.execute("SELECT COUNT(*) FROM car WHERE price = 2.0")
        assert result.rows[0][0] >= 1
        assert store.stats()["invalidations"] >= 1
    finally:
        engine.shutdown()


def test_drop_table_via_engine_releases_map():
    engine = Engine(build_mini_db(), observing_config())
    try:
        engine.execute(
            "CREATE TABLE scratch (id INT PRIMARY KEY, v INT)"
        )
        engine.execute(
            "INSERT INTO scratch (id, v) VALUES "
            + ", ".join(f"({i}, {i * 2})" for i in range(200))
        )
        engine.execute("SELECT COUNT(*) FROM scratch WHERE id < 40")
        assert engine.observe.zone_maps.stats()["tables"] >= 1
        engine.execute("DROP TABLE scratch")
        engine.execute(
            "CREATE TABLE scratch (id INT PRIMARY KEY, v INT)"
        )
        engine.execute(
            "INSERT INTO scratch (id, v) VALUES "
            + ", ".join(f"({i}, {i * 3})" for i in range(100))
        )
        result = engine.execute("SELECT COUNT(*) FROM scratch WHERE v > 150")
        assert result.rows[0][0] == sum(1 for i in range(100) if i * 3 > 150)
    finally:
        engine.shutdown()
