"""The ``fingerprints`` wire command: pagination, clamping, validation —
and the shell-side pretty-printing it feeds."""

import io

import pytest

from repro import Engine, EngineConfig, ReproError
from repro.cli import print_fingerprints, print_stats_dict
from repro.server import ReproServer, connect
from repro.server.server import ReproServer as _Server
from tests.conftest import build_mini_db


def make_engine(observe: bool = True) -> Engine:
    config = EngineConfig.traditional()
    config.observe = observe
    return Engine(build_mini_db(), config)


@pytest.fixture
def server():
    srv = ReproServer(make_engine(), port=0).start_in_thread()
    yield srv
    srv.stop_from_thread()


def warm(client, n: int = 6) -> None:
    for i in range(n):
        client.execute(f"SELECT COUNT(*) FROM car WHERE price < {1000 + i}")
        client.execute(f"SELECT id FROM owner WHERE id = {i}")


def test_fingerprints_roundtrip_and_aggregation(server):
    with connect(port=server.port) as client:
        warm(client)
        reply = client.fingerprints(limit=10, sort="executions")
        assert reply["enabled"] is True
        assert reply["summary"]["recorded"] == 12
        rows = reply["fingerprints"]
        assert len(rows) == 2
        assert rows[0]["executions"] == 6
        assert "?" in rows[0]["statement"]
        for field in ("p50_ms", "p95_ms", "rows_out", "staleness"):
            assert field in rows[0]


def test_fingerprints_pagination(server):
    with connect(port=server.port) as client:
        warm(client)
        first = client.fingerprints(limit=1, sort="executions")
        second = client.fingerprints(limit=1, sort="executions", offset=1)
        assert len(first["fingerprints"]) == 1
        assert len(second["fingerprints"]) == 1
        assert (
            first["fingerprints"][0]["key"]
            != second["fingerprints"][0]["key"]
        )
        assert second["offset"] == 1


def test_fingerprints_limit_clamped_below_frame_cap(server):
    with connect(port=server.port) as client:
        warm(client, 2)
        reply = client.fingerprints(limit=10_000_000)
        assert reply["limit"] == _Server.MAX_FINGERPRINT_LIMIT
        assert len(reply["fingerprints"]) <= _Server.MAX_FINGERPRINT_LIMIT


def test_fingerprints_rejects_bad_sort_and_types(server):
    with connect(port=server.port) as client:
        warm(client, 1)
        with pytest.raises(ReproError):
            client.fingerprints(sort="bogus")
        # Malformed frames (bool limit, non-string sort) get error
        # frames, not a dropped connection.
        for bad in (
            {"limit": True},
            {"limit": "ten"},
            {"offset": False},
            {"sort": 7},
        ):
            frame = {"type": "fingerprints", "id": client.next_id(), **bad}
            client.send_raw(frame)
            reply = client.recv_raw()
            assert reply["type"] == "error", bad
            assert reply["id"] == frame["id"]
        # The connection still works afterwards.
        assert client.fingerprints()["enabled"] is True


def test_fingerprints_disabled_engine_reports_disabled():
    srv = ReproServer(make_engine(observe=False), port=0).start_in_thread()
    try:
        with connect(port=srv.port) as client:
            client.execute("SELECT COUNT(*) FROM car")
            reply = client.fingerprints()
            assert reply["enabled"] is False
            assert reply["fingerprints"] == []
    finally:
        srv.stop_from_thread()


# ----------------------------------------------------------------------
# Shell rendering (the `repro connect` pretty-print path)
# ----------------------------------------------------------------------
def test_print_stats_dict_renders_nested_sections_not_json_blobs():
    out = io.StringIO()
    print_stats_dict(
        {
            "engine": {"statements_executed": 3},
            "observe": {
                "advisor": {
                    "audit": [
                        {"action": "create", "column": "make"},
                        {"action": "drop", "column": "make"},
                    ]
                }
            },
        },
        out,
    )
    text = out.getvalue()
    assert "engine:" in text
    assert "  statements_executed=3" in text
    assert "audit: (2 entries)" in text
    assert "action=create" in text
    assert "{" not in text  # no raw dict/JSON blobs


def test_print_fingerprints_renders_table_and_disabled_notice():
    out = io.StringIO()
    print_fingerprints({"enabled": False}, out)
    assert "disabled" in out.getvalue()

    out = io.StringIO()
    print_fingerprints(
        {
            "enabled": True,
            "fingerprints": [
                {
                    "key": "abc",
                    "type": "SELECT",
                    "executions": 4,
                    "total_ms": 1.5,
                    "p50_ms": 0.3,
                    "p95_ms": 0.6,
                    "rows_out": 8,
                    "staleness": 0.1,
                    "statement": "SELECT COUNT(*) FROM car WHERE price < ?",
                }
            ],
            "summary": {"fingerprints": 1, "recorded": 4, "evicted": 0},
        },
        out,
    )
    text = out.getvalue()
    assert "executions" in text and "p95_ms" in text
    assert "SELECT COUNT(*) FROM car WHERE price < ?" in text
    assert "1 fingerprint(s) tracked" in text
