"""RUNSTATS collection tool."""

import numpy as np
import pytest

from repro.catalog import (
    SystemCatalog,
    collect_group_statistics,
    collect_workload_statistics,
    column_domain,
    run_runstats,
)
from repro.histograms import Interval, Region
from repro.predicates import LocalPredicate, PredOp, count_matches


def test_basic_statistics(mini_db):
    catalog = SystemCatalog()
    stats = run_runstats(mini_db, catalog, "car", now=3)
    assert stats.cardinality == mini_db.table("car").row_count
    assert stats.collected_at == 3
    assert stats.udi_snapshot == mini_db.table("car").udi_total
    assert catalog.table_stats("car") is stats


def test_distribution_statistics_per_column(mini_db):
    catalog = SystemCatalog()
    run_runstats(mini_db, catalog, "car", now=1)
    for column in mini_db.table("car").schema.column_names():
        cs = catalog.column_stats("car", column)
        assert cs is not None
        assert cs.histogram is not None
        assert cs.n_distinct >= 1


def test_without_distribution(mini_db):
    catalog = SystemCatalog()
    run_runstats(mini_db, catalog, "car", with_distribution=False)
    assert catalog.table_stats("car") is not None
    assert catalog.column_stats("car", "make") is None


def test_column_subset(mini_db):
    catalog = SystemCatalog()
    run_runstats(mini_db, catalog, "car", columns=["make"])
    assert catalog.column_stats("car", "make") is not None
    assert catalog.column_stats("car", "price") is None


def test_ndv_exact_on_full_scan(mini_db):
    catalog = SystemCatalog()
    run_runstats(mini_db, catalog, "car")
    cs = catalog.column_stats("car", "make")
    assert cs.n_distinct == 3.0  # conftest uses 3 makes


def test_sampled_runstats_scales_up(mini_db):
    catalog = SystemCatalog()
    run_runstats(
        mini_db, catalog, "car", sample_size=100,
        rng=np.random.default_rng(0),
    )
    cs = catalog.column_stats("car", "price")
    # Histogram mass scaled to ~full cardinality.
    assert cs.histogram.total == pytest.approx(
        mini_db.table("car").row_count, rel=0.01
    )
    # Selectivity estimates remain sane.
    sel = cs.selectivity_interval(Interval(0, 1e9))
    assert sel == pytest.approx(1.0, abs=0.01)


def test_column_domain_int_and_float(mini_db):
    year_domain = column_domain(mini_db.table("car"), "year")
    years = mini_db.table("car").column_data("year")
    assert year_domain.low == years.min()
    assert year_domain.high == years.max() + 1  # integral

    price_domain = column_domain(mini_db.table("car"), "price")
    prices = mini_db.table("car").column_data("price")
    assert price_domain.high > prices.max()
    assert price_domain.high == pytest.approx(prices.max(), rel=1e-9)


def test_group_statistics_accuracy(mini_db):
    catalog = SystemCatalog()
    stats = collect_group_statistics(mini_db, catalog, "car", ["make", "model"])
    table = mini_db.table("car")
    make_code = table.column("make").lookup_value("Toyota")
    model_code = table.column("model").lookup_value("Camry")
    region = Region.of(
        Interval(make_code, make_code + 1), Interval(model_code, model_code + 1)
    )
    actual = count_matches(
        table,
        [
            LocalPredicate("c", "make", PredOp.EQ, ("Toyota",)),
            LocalPredicate("c", "model", PredOp.EQ, ("Camry",)),
        ],
    ) / table.row_count
    assert stats.selectivity(region) == pytest.approx(actual, abs=0.02)


def test_collect_workload_statistics_dedupes(mini_db):
    catalog = SystemCatalog()
    built = collect_workload_statistics(
        mini_db,
        catalog,
        [
            ("car", ("make", "model")),
            ("CAR", ("model", "make")),  # duplicate, different order/case
            ("car", ("make",)),  # single column skipped
            ("owner", ("city", "salary")),
        ],
    )
    assert built == 2
    assert catalog.group_stats("car", ["make", "model"]) is not None
    assert catalog.group_stats("owner", ["city", "salary"]) is not None
