"""Catalog statistics objects and their estimators."""

import numpy as np
import pytest

from repro.catalog import (
    ROWS_PER_PAGE,
    ColumnStatistics,
    SystemCatalog,
    TableStatistics,
    canonical_group,
    top_frequent_values,
)
from repro.errors import CatalogError
from repro.histograms import EquiDepthHistogram, Interval
from repro.types import DataType


def make_stats(values, dtype=DataType.INT, n_frequent=3, n_buckets=8):
    data = np.asarray(values, dtype=np.float64)
    return ColumnStatistics(
        column="c",
        dtype=dtype,
        n_distinct=float(len(np.unique(data))),
        min_value=float(data.min()),
        max_value=float(data.max()),
        row_count=float(len(data)),
        frequent_values=top_frequent_values(data, n_frequent),
        histogram=EquiDepthHistogram.build(
            data, n_buckets=n_buckets, integral=dtype is not DataType.FLOAT
        ),
    )


def test_selectivity_eq_frequent_value():
    stats = make_stats([1] * 70 + [2] * 20 + list(range(3, 13)))
    assert stats.selectivity_eq(1.0) == pytest.approx(0.7)
    assert stats.selectivity_eq(2.0) == pytest.approx(0.2)


def test_selectivity_eq_rare_value_uses_remainder():
    stats = make_stats([1] * 70 + [2] * 20 + list(range(3, 13)))
    # 10 rare rows over 9 rare distinct values (one of 3..12 made top-3).
    sel = stats.selectivity_eq(5.0)
    assert 0.005 < sel < 0.03


def test_selectivity_eq_out_of_range_zero():
    stats = make_stats([1, 2, 3])
    assert stats.selectivity_eq(99.0) == 0.0
    assert stats.selectivity_eq(-1.0) == 0.0


def test_selectivity_eq_empty_column():
    stats = ColumnStatistics(
        column="c", dtype=DataType.INT, n_distinct=0, min_value=0,
        max_value=0, row_count=0,
    )
    assert stats.selectivity_eq(1.0) == 0.0


def test_selectivity_interval_with_histogram():
    stats = make_stats(list(range(100)))
    sel = stats.selectivity_interval(Interval(0, 50))
    assert sel == pytest.approx(0.5, abs=0.05)


def test_selectivity_interval_without_histogram_uniform():
    stats = ColumnStatistics(
        column="c", dtype=DataType.FLOAT, n_distinct=100, min_value=0.0,
        max_value=100.0, row_count=1000,
    )
    assert stats.selectivity_interval(Interval(0, 25)) == pytest.approx(
        0.25, abs=0.01
    )
    assert stats.selectivity_interval(Interval(200, 300)) == 0.0


def test_boundary_list_fallback():
    stats = ColumnStatistics(
        column="c", dtype=DataType.INT, n_distinct=2, min_value=1.0,
        max_value=9.0, row_count=10,
    )
    assert stats.boundary_list() == [1.0, 9.0]


def test_frequent_mass():
    stats = make_stats([1] * 5 + [2] * 3 + [3])
    assert stats.frequent_mass == pytest.approx(9.0)


def test_table_statistics_pages():
    stats = TableStatistics(table="t", cardinality=1234.0)
    assert stats.n_pages == pytest.approx(1234.0 / ROWS_PER_PAGE)
    assert TableStatistics(table="t", cardinality=1.0).n_pages == 1.0


def test_top_frequent_values_ordering():
    values = np.array([5.0] * 10 + [7.0] * 3 + [9.0])
    top = top_frequent_values(values, 2)
    assert top == [(5.0, 10.0), (7.0, 3.0)]
    assert top_frequent_values(values, 0) == []
    assert top_frequent_values(np.array([]), 3) == []


def test_catalog_group_requires_two_columns(mini_db):
    from repro.catalog import ColumnGroupStatistics
    from repro.histograms import AdaptiveGridHistogram, Region

    catalog = SystemCatalog()
    hist = AdaptiveGridHistogram(
        Region.of(Interval(0, 1)), total=1.0
    )
    with pytest.raises(CatalogError):
        catalog.set_group_stats(
            ColumnGroupStatistics(table="t", columns=("a",), histogram=hist)
        )


def test_canonical_group():
    assert canonical_group(["B", "a", "C"]) == ("a", "b", "c")


def test_catalog_clear_and_has(mini_catalog):
    assert mini_catalog.has_any_stats("car")
    assert mini_catalog.columns_with_stats("car")
    mini_catalog.clear_table("car")
    assert not mini_catalog.has_any_stats("car")
    assert mini_catalog.column_stats("car", "make") is None
    mini_catalog.clear()
    assert not mini_catalog.has_any_stats("owner")
