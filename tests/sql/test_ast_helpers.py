"""AST helper functions and rendering."""

from repro.sql import ast


def test_conjuncts_flattens_nested_ands():
    a = ast.Comparison(ast.CompareOp.EQ, ast.ColumnRef("a"), ast.Literal(1))
    b = ast.Comparison(ast.CompareOp.EQ, ast.ColumnRef("b"), ast.Literal(2))
    c = ast.Comparison(ast.CompareOp.EQ, ast.ColumnRef("c"), ast.Literal(3))
    nested = ast.AndExpr((ast.AndExpr((a, b)), c))
    assert ast.conjuncts(nested) == [a, b, c]
    assert ast.conjuncts(None) == []
    assert ast.conjuncts(a) == [a]


def test_make_and_roundtrip():
    a = ast.Comparison(ast.CompareOp.EQ, ast.ColumnRef("a"), ast.Literal(1))
    b = ast.Comparison(ast.CompareOp.EQ, ast.ColumnRef("b"), ast.Literal(2))
    assert ast.make_and([]) is None
    assert ast.make_and([a]) is a
    combined = ast.make_and([a, b])
    assert isinstance(combined, ast.AndExpr)
    assert ast.conjuncts(combined) == [a, b]


def test_column_refs_collects_everywhere():
    expr = ast.OrExpr(
        (
            ast.Comparison(
                ast.CompareOp.GT,
                ast.BinaryArith("+", ast.ColumnRef("a", "t"), ast.Literal(1)),
                ast.ColumnRef("b", "u"),
            ),
            ast.NotExpr(
                ast.BetweenExpr(
                    ast.ColumnRef("c"), ast.Literal(1), ast.ColumnRef("d")
                )
            ),
            ast.InListExpr(ast.ColumnRef("e"), (ast.Literal(1),)),
        )
    )
    names = {r.name for r in ast.column_refs(expr)}
    assert names == {"a", "b", "c", "d", "e"}


def test_column_refs_in_aggregates():
    agg = ast.Aggregate(ast.AggFunc.SUM, ast.ColumnRef("x", "t"))
    assert [r.name for r in ast.column_refs(agg)] == ["x"]
    count_star = ast.Aggregate(ast.AggFunc.COUNT, None)
    assert ast.column_refs(count_star) == []


def test_contains_aggregate():
    agg = ast.Aggregate(ast.AggFunc.COUNT, None)
    assert ast.contains_aggregate(agg)
    assert ast.contains_aggregate(ast.BinaryArith("+", agg, ast.Literal(1)))
    assert ast.contains_aggregate(
        ast.Comparison(ast.CompareOp.GT, agg, ast.Literal(2))
    )
    assert not ast.contains_aggregate(ast.ColumnRef("a"))
    assert not ast.contains_aggregate(None)


def test_literal_rendering_escapes_quotes():
    assert str(ast.Literal("it's")) == "'it''s'"
    assert str(ast.Literal(5)) == "5"
    assert str(ast.Literal(2.5)) == "2.5"


def test_expression_rendering():
    expr = ast.BinaryArith(
        "*",
        ast.UnaryArith("-", ast.ColumnRef("a", "t")),
        ast.Literal(2),
    )
    assert str(expr) == "((-t.a) * 2)"
    agg = ast.Aggregate(ast.AggFunc.COUNT, ast.ColumnRef("x"), distinct=True)
    assert str(agg) == "COUNT(DISTINCT x)"


def test_boolean_rendering():
    cmp1 = ast.Comparison(ast.CompareOp.NE, ast.ColumnRef("a"), ast.Literal(1))
    cmp2 = ast.Comparison(ast.CompareOp.LE, ast.ColumnRef("b"), ast.Literal(2))
    assert str(ast.AndExpr((cmp1, cmp2))) == "(a <> 1) AND (b <= 2)"
    assert str(ast.OrExpr((cmp1, cmp2))) == "(a <> 1) OR (b <= 2)"
    assert str(ast.NotExpr(cmp1)) == "NOT (a <> 1)"
    between = ast.BetweenExpr(
        ast.ColumnRef("x"), ast.Literal(1), ast.Literal(2), negated=True
    )
    assert str(between) == "x NOT BETWEEN 1 AND 2"
    inlist = ast.InListExpr(ast.ColumnRef("s"), (ast.Literal("a"),))
    assert str(inlist) == "s IN ('a')"


def test_compare_op_flip():
    assert ast.CompareOp.LT.flipped() is ast.CompareOp.GT
    assert ast.CompareOp.GE.flipped() is ast.CompareOp.LE
    assert ast.CompareOp.EQ.flipped() is ast.CompareOp.EQ
    assert ast.CompareOp.NE.flipped() is ast.CompareOp.NE


def test_select_item_output_name():
    item = ast.SelectItem(expr=ast.ColumnRef("price", "c"), alias=None)
    assert item.output_name(0) == "price"
    aliased = ast.SelectItem(expr=ast.Literal(1), alias="one")
    assert aliased.output_name(3) == "one"
    anonymous = ast.SelectItem(expr=ast.Literal(1), alias=None)
    assert anonymous.output_name(3) == "col3"
