"""SQL parser: statements, precedence, error reporting."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast, parse, parse_select
from repro.types import DataType


def test_simple_select():
    stmt = parse_select("SELECT a, b FROM t")
    assert [i.expr.name for i in stmt.items] == ["a", "b"]
    assert isinstance(stmt.from_items[0], ast.TableRef)
    assert stmt.from_items[0].name == "t"


def test_select_star():
    stmt = parse_select("SELECT * FROM t")
    assert stmt.star
    assert stmt.items == []


def test_aliases():
    stmt = parse_select("SELECT a AS x, b y FROM t AS u, v w")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"
    assert stmt.from_items[0].alias == "u"
    assert stmt.from_items[1].alias == "w"


def test_qualified_columns():
    stmt = parse_select("SELECT t.a FROM t")
    ref = stmt.items[0].expr
    assert ref.qualifier == "t" and ref.name == "a"


def test_where_and_or_not_precedence():
    stmt = parse_select("SELECT a FROM t WHERE a = 1 OR b = 2 AND NOT c = 3")
    where = stmt.where
    assert isinstance(where, ast.OrExpr)
    assert isinstance(where.operands[1], ast.AndExpr)
    assert isinstance(where.operands[1].operands[1], ast.NotExpr)


def test_between_and_in():
    stmt = parse_select(
        "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b IN ('x', 'y') "
        "AND c NOT BETWEEN 2 AND 3 AND d NOT IN (5)"
    )
    conjuncts = ast.conjuncts(stmt.where)
    assert isinstance(conjuncts[0], ast.BetweenExpr) and not conjuncts[0].negated
    assert isinstance(conjuncts[1], ast.InListExpr) and not conjuncts[1].negated
    assert conjuncts[2].negated and conjuncts[3].negated


def test_comparison_operators():
    for op_text, op in [
        ("=", ast.CompareOp.EQ),
        ("<>", ast.CompareOp.NE),
        ("!=", ast.CompareOp.NE),
        ("<", ast.CompareOp.LT),
        ("<=", ast.CompareOp.LE),
        (">", ast.CompareOp.GT),
        (">=", ast.CompareOp.GE),
    ]:
        stmt = parse_select(f"SELECT a FROM t WHERE a {op_text} 5")
        assert stmt.where.op is op


def test_arithmetic_precedence():
    stmt = parse_select("SELECT a + b * 2 FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "+"
    assert expr.right.op == "*"


def test_unary_minus_and_parens():
    stmt = parse_select("SELECT -(a + 1) * 2 FROM t")
    expr = stmt.items[0].expr
    assert expr.op == "*"
    assert isinstance(expr.left, ast.UnaryArith)


def test_negative_literals_in_lists():
    stmt = parse_select("SELECT a FROM t WHERE a IN (-1, 2)")
    assert stmt.where.items[0].value == -1


def test_aggregates():
    stmt = parse_select(
        "SELECT COUNT(*), COUNT(a), COUNT(DISTINCT a), SUM(a), AVG(a), "
        "MIN(a), MAX(a) FROM t"
    )
    aggs = [i.expr for i in stmt.items]
    assert aggs[0].argument is None
    assert aggs[2].distinct
    assert aggs[3].func is ast.AggFunc.SUM


def test_group_by_having_order_limit():
    stmt = parse_select(
        "SELECT a, COUNT(*) n FROM t GROUP BY a HAVING COUNT(*) > 2 "
        "ORDER BY n DESC, a ASC LIMIT 7"
    )
    assert len(stmt.group_by) == 1
    assert stmt.having is not None
    assert stmt.order_by[0].descending and not stmt.order_by[1].descending
    assert stmt.limit == 7


def test_distinct():
    assert parse_select("SELECT DISTINCT a FROM t").distinct


def test_explicit_join_folds_into_where():
    stmt = parse_select(
        "SELECT a FROM t JOIN u ON t.id = u.id INNER JOIN v ON u.x = v.x "
        "WHERE t.a > 1"
    )
    assert len(stmt.from_items) == 3
    assert len(ast.conjuncts(stmt.where)) == 3


def test_derived_table():
    stmt = parse_select("SELECT x FROM (SELECT a AS x FROM t) AS d WHERE x > 1")
    derived = stmt.from_items[0]
    assert isinstance(derived, ast.DerivedTable)
    assert derived.alias == "d"
    assert isinstance(derived.select, ast.SelectStatement)


def test_insert():
    stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, ast.InsertStatement)
    assert stmt.columns == ["a", "b"]
    assert [l.value for l in stmt.rows[1]] == [2, "y"]


def test_insert_without_columns():
    stmt = parse("INSERT INTO t VALUES (1, 2)")
    assert stmt.columns is None


def test_insert_negative_number():
    stmt = parse("INSERT INTO t VALUES (-5)")
    assert stmt.rows[0][0].value == -5


def test_update():
    stmt = parse("UPDATE t SET a = a + 1, b = 'z' WHERE c < 3")
    assert isinstance(stmt, ast.UpdateStatement)
    assert stmt.assignments[0][0] == "a"
    assert stmt.where is not None


def test_delete():
    stmt = parse("DELETE FROM t WHERE a = 1")
    assert isinstance(stmt, ast.DeleteStatement)
    stmt = parse("DELETE FROM t")
    assert stmt.where is None


def test_create_table():
    stmt = parse(
        "CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20), pay FLOAT)"
    )
    assert isinstance(stmt, ast.CreateTableStatement)
    assert stmt.primary_key == "id"
    assert [c.dtype for c in stmt.columns] == [
        DataType.INT,
        DataType.STRING,
        DataType.FLOAT,
    ]


def test_create_table_trailing_pk_clause():
    stmt = parse("CREATE TABLE t (id INT, PRIMARY KEY (id))")
    assert stmt.primary_key == "id"


def test_create_index():
    stmt = parse("CREATE INDEX i ON t (a)")
    assert isinstance(stmt, ast.CreateIndexStatement)
    assert (stmt.table, stmt.column, stmt.kind) == ("t", "a", "hash")
    stmt = parse("CREATE INDEX i ON t (a) USING SORTED")
    assert stmt.kind == "sorted"


def test_drop_table():
    stmt = parse("DROP TABLE t")
    assert isinstance(stmt, ast.DropTableStatement)
    assert stmt.table == "t"


def test_trailing_semicolon_ok():
    parse("SELECT a FROM t;")


def test_trailing_garbage_rejected():
    with pytest.raises(SqlSyntaxError):
        parse("SELECT a FROM t garbage garbage")


def test_error_messages_carry_position():
    with pytest.raises(SqlSyntaxError) as excinfo:
        parse("SELECT FROM t")
    assert "expected" in str(excinfo.value)


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "SELECT",
        "SELECT a",
        "SELECT a FROM",
        "SELECT a FROM t WHERE",
        "SELECT a FROM t WHERE a >",
        "SELECT a FROM t GROUP",
        "SELECT a FROM t LIMIT x",
        "INSERT INTO t",
        "UPDATE t",
        "CREATE TABLE t ()",
        "SELECT a FROM t WHERE a IN ()",
    ],
)
def test_rejects_malformed(bad):
    with pytest.raises(SqlSyntaxError):
        parse(bad)


def test_parse_select_rejects_dml():
    with pytest.raises(SqlSyntaxError):
        parse_select("DELETE FROM t")


# ----------------------------------------------------------------------
# AS OF time travel
# ----------------------------------------------------------------------
def test_as_of_trailing_clause():
    stmt = parse_select("SELECT a FROM t AS OF 42")
    assert stmt.as_of == 42


def test_as_of_defaults_to_none():
    assert parse_select("SELECT a FROM t").as_of is None


def test_as_of_after_order_and_limit():
    stmt = parse_select(
        "SELECT a FROM t WHERE a > 1 ORDER BY a LIMIT 5 AS OF 7"
    )
    assert stmt.limit == 5
    assert stmt.as_of == 7


def test_as_of_does_not_eat_select_alias():
    # AS in the select list is still an alias; only trailing AS OF is
    # time travel.
    stmt = parse_select("SELECT a AS x FROM t AS OF 3")
    assert stmt.items[0].alias == "x"
    assert stmt.as_of == 3


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT a FROM t AS OF",
        "SELECT a FROM t AS OF epoch",
        "SELECT a FROM t AS 42",
        "SELECT a FROM t AS OF 3 garbage",
    ],
)
def test_as_of_malformed_rejected(bad):
    with pytest.raises(SqlSyntaxError):
        parse(bad)
