"""SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.text) for t in tokenize(sql)[:-1]]  # drop EOF


def test_keywords_lowercased():
    assert kinds("SELECT From WHERE") == [
        (TokenType.KEYWORD, "select"),
        (TokenType.KEYWORD, "from"),
        (TokenType.KEYWORD, "where"),
    ]


def test_identifiers_keep_case():
    assert kinds("myTable _x a1") == [
        (TokenType.IDENT, "myTable"),
        (TokenType.IDENT, "_x"),
        (TokenType.IDENT, "a1"),
    ]


def test_numbers():
    assert kinds("1 2.5 .5 1e3 2.5E-2") == [
        (TokenType.NUMBER, "1"),
        (TokenType.NUMBER, "2.5"),
        (TokenType.NUMBER, ".5"),
        (TokenType.NUMBER, "1e3"),
        (TokenType.NUMBER, "2.5E-2"),
    ]


def test_strings_with_escapes():
    assert kinds("'hello' 'it''s'") == [
        (TokenType.STRING, "hello"),
        (TokenType.STRING, "it's"),
    ]


def test_unterminated_string():
    with pytest.raises(SqlSyntaxError):
        tokenize("'oops")


def test_two_char_symbols():
    assert kinds("<= >= <> !=") == [
        (TokenType.SYMBOL, "<="),
        (TokenType.SYMBOL, ">="),
        (TokenType.SYMBOL, "<>"),
        (TokenType.SYMBOL, "<>"),  # != normalizes
    ]


def test_single_char_symbols():
    text = [t for _, t in kinds("( ) * , . + - / = < > ;")]
    assert text == ["(", ")", "*", ",", ".", "+", "-", "/", "=", "<", ">", ";"]


def test_comments_skipped():
    assert kinds("SELECT -- comment here\n 1") == [
        (TokenType.KEYWORD, "select"),
        (TokenType.NUMBER, "1"),
    ]


def test_unknown_character():
    with pytest.raises(SqlSyntaxError) as excinfo:
        tokenize("SELECT @")
    assert excinfo.value.position == 7


def test_eof_token_always_present():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_token_helpers():
    token = tokenize("select")[0]
    assert token.is_keyword("select")
    assert not token.is_keyword("from")
    assert not token.is_symbol("(")
