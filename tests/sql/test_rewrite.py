"""Rewrite stage: constant folding and view merging."""

import pytest

from repro.errors import BindingError
from repro.sql import ast, parse_select
from repro.sql.rewrite import fold_bool, fold_expr, is_mergeable, rewrite_select


def lit(v):
    return ast.Literal(v)


def test_fold_arithmetic():
    expr = ast.BinaryArith("+", lit(2), ast.BinaryArith("*", lit(3), lit(4)))
    assert fold_expr(expr) == lit(14)


def test_fold_preserves_int_division_when_exact():
    assert fold_expr(ast.BinaryArith("/", lit(10), lit(2))) == lit(5)
    assert fold_expr(ast.BinaryArith("/", lit(10), lit(4))) == lit(2.5)


def test_fold_division_by_zero():
    with pytest.raises(BindingError):
        fold_expr(ast.BinaryArith("/", lit(1), lit(0)))


def test_fold_unary():
    assert fold_expr(ast.UnaryArith("-", lit(5))) == lit(-5)


def test_fold_leaves_columns_alone():
    col = ast.ColumnRef("a")
    expr = ast.BinaryArith("+", col, lit(1))
    folded = fold_expr(expr)
    assert folded.left == col and folded.right == lit(1)


def test_fold_string_arith_rejected():
    with pytest.raises(BindingError):
        fold_expr(ast.BinaryArith("+", lit("a"), lit("b")))


def test_fold_bool_recurses():
    stmt = parse_select("SELECT a FROM t WHERE a > 2 * 3 + 1")
    folded = fold_bool(stmt.where)
    assert folded.right == lit(7)


def test_is_mergeable():
    assert is_mergeable(parse_select("SELECT a, b FROM t WHERE a > 1"))
    assert not is_mergeable(parse_select("SELECT COUNT(*) FROM t"))
    assert not is_mergeable(parse_select("SELECT a FROM t GROUP BY a"))
    assert not is_mergeable(parse_select("SELECT DISTINCT a FROM t"))
    assert not is_mergeable(parse_select("SELECT a FROM t LIMIT 3"))
    assert not is_mergeable(parse_select("SELECT a FROM t ORDER BY a"))
    assert not is_mergeable(parse_select("SELECT a + 1 AS x FROM t"))


def test_view_merge_hoists_tables_and_predicates():
    stmt = parse_select(
        "SELECT v.x FROM (SELECT a AS x FROM t WHERE a > 1) v WHERE v.x < 9"
    )
    merged = rewrite_select(stmt)
    assert len(merged.from_items) == 1
    assert isinstance(merged.from_items[0], ast.TableRef)
    conjuncts = ast.conjuncts(merged.where)
    assert len(conjuncts) == 2
    # v.x references rewrote to the underlying column a.
    rendered = " AND ".join(str(c) for c in conjuncts)
    assert "v.x" not in rendered
    assert "a" in rendered


def test_view_merge_skips_aggregating_views():
    stmt = parse_select(
        "SELECT v.n FROM (SELECT COUNT(*) AS n FROM t) v WHERE v.n > 1"
    )
    merged = rewrite_select(stmt)
    assert isinstance(merged.from_items[0], ast.DerivedTable)


def test_view_merge_nested():
    stmt = parse_select(
        "SELECT w.x FROM (SELECT v.x AS x FROM "
        "(SELECT a AS x FROM t) v) w"
    )
    merged = rewrite_select(stmt)
    assert len(merged.from_items) == 1
    assert isinstance(merged.from_items[0], ast.TableRef)


def test_view_merge_preserves_select_outputs():
    stmt = parse_select(
        "SELECT v.x, v.y FROM (SELECT a x, b y FROM t) v ORDER BY v.x"
    )
    merged = rewrite_select(stmt)
    assert str(merged.items[0].expr) == "a"
    assert str(merged.order_by[0].expr) == "a"
