"""QGM binder: name resolution, predicate classification, block structure."""

import pytest

from repro.errors import BindingError
from repro.predicates import PredOp
from repro.sql import build_query_graph, parse_select
from repro.types import DataType


def bind(sql, db):
    return build_query_graph(parse_select(sql), db)


def test_base_quantifiers(mini_db):
    block = bind("SELECT c.id FROM car c, owner o", mini_db)
    assert block.aliases() == ["c", "o"]
    assert block.base_tables() == {"c": "car", "o": "owner"}


def test_default_alias_is_table_name(mini_db):
    block = bind("SELECT id FROM owner", mini_db)
    assert block.aliases() == ["owner"]


def test_unknown_table(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT x FROM ghost", mini_db)


def test_unknown_column(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT nope FROM owner", mini_db)


def test_ambiguous_column(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT id FROM car, owner", mini_db)


def test_duplicate_alias(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT 1 FROM car c, owner c", mini_db)


def test_unqualified_resolution(mini_db):
    block = bind("SELECT make FROM car, owner", mini_db)
    ref = block.select_items[0].expr
    assert ref.qualifier == "car"


def test_local_predicate_classification(mini_db):
    block = bind(
        "SELECT c.id FROM car c WHERE make = 'Toyota' AND 2000 < year "
        "AND price BETWEEN 1 AND 2 AND model IN ('Camry') AND year <> 1999",
        mini_db,
    )
    preds = {(p.column, p.op) for p in block.local_predicates_for("c")}
    assert preds == {
        ("make", PredOp.EQ),
        ("year", PredOp.GT),  # literal-first comparison flipped
        ("price", PredOp.BETWEEN),
        ("model", PredOp.IN),
        ("year", PredOp.NE),
    }


def test_join_predicate_classification(mini_db):
    block = bind(
        "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id", mini_db
    )
    assert len(block.join_predicates) == 1
    join = block.join_predicates[0]
    assert join.aliases() == frozenset({"c", "o"})
    assert not block.local_predicates


def test_same_alias_column_comparison_is_scan_residual(mini_db):
    block = bind("SELECT c.id FROM car c WHERE c.year = c.id", mini_db)
    assert not block.join_predicates
    assert len(block.scan_residuals["c"]) == 1


def test_non_equi_cross_alias_is_residual(mini_db):
    block = bind(
        "SELECT c.id FROM car c, owner o WHERE c.price > o.salary", mini_db
    )
    assert len(block.residuals) == 1


def test_or_tree_single_alias_is_scan_residual(mini_db):
    block = bind(
        "SELECT id FROM owner WHERE salary > 1 OR city = 'Ottawa'", mini_db
    )
    assert len(block.scan_residuals["owner"]) == 1
    assert not block.local_predicates


def test_negated_in_is_residual(mini_db):
    block = bind("SELECT id FROM owner WHERE city NOT IN ('Ottawa')", mini_db)
    assert not block.local_predicates
    assert len(block.scan_residuals["owner"]) == 1


def test_star_expansion(mini_db):
    block = bind("SELECT * FROM owner", mini_db)
    assert block.output_names() == ["id", "name", "salary", "city"]


def test_duplicate_output_names_disambiguated(mini_db):
    block = bind("SELECT c.id, o.id FROM car c, owner o", mini_db)
    assert block.output_names() == ["id", "id_1"]


def test_output_dtypes(mini_db):
    block = bind(
        "SELECT name, salary, id, COUNT(*) AS n, AVG(salary) a, salary / 2 h "
        "FROM owner GROUP BY name, salary, id",
        mini_db,
    )
    dtypes = [o.dtype for o in block.outputs]
    assert dtypes == [
        DataType.STRING,
        DataType.FLOAT,
        DataType.INT,
        DataType.INT,
        DataType.FLOAT,
        DataType.FLOAT,
    ]


def test_aggregate_validation(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT name, COUNT(*) FROM owner", mini_db)
    block = bind("SELECT city, COUNT(*) FROM owner GROUP BY city", mini_db)
    assert block.has_aggregates


def test_having_without_aggregates_rejected(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT id FROM owner HAVING COUNT(*) > 1", mini_db)


def test_group_by_expression_rejected(mini_db):
    with pytest.raises(BindingError):
        bind("SELECT salary + 1 FROM owner GROUP BY salary + 1", mini_db)


def test_derived_table_block_tree(mini_db):
    block = bind(
        "SELECT v.n FROM (SELECT city, COUNT(*) AS n FROM owner GROUP BY city) v "
        "WHERE v.n > 10",
        mini_db,
    )
    blocks = block.all_blocks()
    assert len(blocks) == 2
    assert not block.quantifiers["v"].is_base
    # The parent's predicate on v.n is a local predicate on the derived
    # quantifier (not on a base table).
    assert len(block.local_predicates_for("v")) == 1
    # Child block sees the base table.
    assert blocks[1].base_tables() == {"owner": "owner"}


def test_mergeable_view_disappears(mini_db):
    block = bind(
        "SELECT v.make FROM (SELECT make FROM car WHERE year > 2000) v",
        mini_db,
    )
    assert len(block.all_blocks()) == 1
    assert block.base_tables() == {"car": "car"}
    assert len(block.local_predicates_for("car")) == 1


def test_order_by_output_alias(mini_db):
    block = bind(
        "SELECT city, COUNT(*) AS n FROM owner GROUP BY city ORDER BY n DESC",
        mini_db,
    )
    assert len(block.order_by) == 1
