"""Core utilities: types, timers, RNG helpers."""

import time

import pytest

from repro.timer import PhaseTimer, Stopwatch
from repro.rng import DEFAULT_SEED, derive_rng, make_rng
from repro.types import DataType, comparable


# ----------------------------------------------------------------------
# DataType
# ----------------------------------------------------------------------
def test_validate_int():
    assert DataType.INT.validate(5) == 5
    assert DataType.INT.validate(5.0) == 5
    with pytest.raises(TypeError):
        DataType.INT.validate(5.5)
    with pytest.raises(TypeError):
        DataType.INT.validate("5")
    with pytest.raises(TypeError):
        DataType.INT.validate(True)


def test_validate_float():
    assert DataType.FLOAT.validate(5) == 5.0
    assert isinstance(DataType.FLOAT.validate(5), float)
    with pytest.raises(TypeError):
        DataType.FLOAT.validate("x")
    with pytest.raises(TypeError):
        DataType.FLOAT.validate(False)


def test_validate_string():
    assert DataType.STRING.validate("x") == "x"
    with pytest.raises(TypeError):
        DataType.STRING.validate(1)


def test_is_numeric():
    assert DataType.INT.is_numeric
    assert DataType.FLOAT.is_numeric
    assert not DataType.STRING.is_numeric


def test_comparable():
    assert comparable(DataType.INT, 5)
    assert comparable(DataType.INT, 5.5)
    assert not comparable(DataType.INT, "x")
    assert not comparable(DataType.INT, True)
    assert comparable(DataType.STRING, "x")
    assert not comparable(DataType.STRING, 5)


# ----------------------------------------------------------------------
# Timers
# ----------------------------------------------------------------------
def test_stopwatch_accumulates():
    watch = Stopwatch()
    watch.start()
    time.sleep(0.01)
    first = watch.stop()
    assert first >= 0.01
    watch.start()
    watch.stop()
    assert watch.elapsed >= first


def test_stopwatch_misuse():
    watch = Stopwatch()
    with pytest.raises(RuntimeError):
        watch.stop()
    watch.start()
    with pytest.raises(RuntimeError):
        watch.start()


def test_phase_timer():
    timer = PhaseTimer()
    with timer.phase("compile"):
        time.sleep(0.005)
    with timer.phase("execute"):
        pass
    with timer.phase("compile"):
        pass
    assert timer.get("compile") >= 0.005
    assert timer.get("missing") == 0.0
    assert timer.total == pytest.approx(
        timer.get("compile") + timer.get("execute")
    )
    timer.add("fetch", 0.5)
    assert timer.get("fetch") == 0.5


def test_phase_timer_records_on_exception():
    timer = PhaseTimer()
    with pytest.raises(ValueError):
        with timer.phase("boom"):
            raise ValueError()
    assert timer.get("boom") >= 0.0
    assert "boom" in timer.phases


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------
def test_make_rng_deterministic():
    assert make_rng(1).integers(0, 100, 5).tolist() == make_rng(1).integers(
        0, 100, 5
    ).tolist()
    assert make_rng().integers(0, 1000) == make_rng(DEFAULT_SEED).integers(0, 1000)


def test_derive_rng_independent_streams():
    parent = make_rng(7)
    child_a = derive_rng(parent, 1)
    child_b = derive_rng(parent, 2)
    assert child_a.integers(0, 10**9) != child_b.integers(0, 10**9)


def test_derive_rng_reproducible():
    a = derive_rng(make_rng(7), 42).integers(0, 10**9)
    b = derive_rng(make_rng(7), 42).integers(0, 10**9)
    assert a == b
