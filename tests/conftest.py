"""Shared fixtures: small deterministic databases and engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, DataType, Engine, EngineConfig, make_schema
from repro.catalog import SystemCatalog, run_runstats


MAKES_MODELS = {
    "Toyota": ["Camry", "Corolla"],
    "Honda": ["Civic"],
    "Ford": ["F150", "Focus"],
}


def build_mini_db(n_owners: int = 200, n_cars: int = 600, seed: int = 7) -> Database:
    """A small car/owner database with a make->model correlation."""
    db = Database()
    db.create_table(
        make_schema(
            "owner",
            [
                ("id", DataType.INT),
                ("name", DataType.STRING),
                ("salary", DataType.FLOAT),
                ("city", DataType.STRING),
            ],
            primary_key="id",
        )
    )
    db.create_table(
        make_schema(
            "car",
            [
                ("id", DataType.INT),
                ("ownerid", DataType.INT),
                ("make", DataType.STRING),
                ("model", DataType.STRING),
                ("year", DataType.INT),
                ("price", DataType.FLOAT),
            ],
            primary_key="id",
        )
    )
    rng = np.random.default_rng(seed)
    cities = ["Ottawa", "Toronto", "Waterloo"]
    db.table("owner").insert_columns(
        {
            "id": np.arange(n_owners, dtype=np.int64),
            "name": [f"owner_{i}" for i in range(n_owners)],
            "salary": rng.uniform(1_000, 9_000, n_owners),
            "city": [cities[i % 3] for i in range(n_owners)],
        }
    )
    makes = list(MAKES_MODELS)
    make_values = [makes[int(i)] for i in rng.integers(0, len(makes), n_cars)]
    model_values = [
        MAKES_MODELS[m][i % len(MAKES_MODELS[m])]
        for i, m in enumerate(make_values)
    ]
    db.table("car").insert_columns(
        {
            "id": np.arange(n_cars, dtype=np.int64),
            "ownerid": rng.integers(0, n_owners, n_cars),
            "make": make_values,
            "model": model_values,
            "year": rng.integers(1995, 2008, n_cars),
            "price": rng.uniform(2_000, 50_000, n_cars),
        }
    )
    db.create_hash_index("car", "ownerid")
    db.create_sorted_index("car", "price")
    return db


@pytest.fixture
def mini_db() -> Database:
    return build_mini_db()


@pytest.fixture
def mini_catalog(mini_db) -> SystemCatalog:
    catalog = SystemCatalog()
    for name in mini_db.table_names():
        run_runstats(mini_db, catalog, name, now=1)
    return catalog


@pytest.fixture
def plain_engine(mini_db) -> Engine:
    return Engine(mini_db, EngineConfig.traditional())


@pytest.fixture
def stats_engine(mini_db) -> Engine:
    engine = Engine(mini_db, EngineConfig.traditional())
    engine.collect_general_statistics()
    return engine


@pytest.fixture
def jits_engine(mini_db) -> Engine:
    return Engine(mini_db, EngineConfig.with_jits(s_max=0.5, sample_size=400))
