"""Process-parallel scan execution: differential and lifecycle tests.

The core assertion everywhere: sharding a scan across worker processes
is purely an execution strategy — results, final table state and
collected statistics are byte-identical to the sequential engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.catalog import SystemCatalog
from repro.catalog.runstats import run_runstats
from repro.engine import Engine, EngineConfig
from repro.executor import run_reference
from repro.sql import build_query_graph, parse_select
from tests.conftest import build_mini_db
from tests.harness.differential import (
    MODES,
    run_differential,
    stats_fingerprint,
)

# Seeded mixed workload: interleaved scans, joins, aggregates and DML on
# both tables. This is also the CI ``scan_workers=4`` smoke workload.
MIXED_WORKLOAD = [
    "SELECT id, price FROM car WHERE price > 20000 AND year >= 2000",
    "SELECT make, model, COUNT(*) FROM car GROUP BY make, model",
    "SELECT id FROM car WHERE model IN ('Camry', 'Civic', 'F150')",
    "SELECT o.name, c.id FROM car c, owner o "
    "WHERE c.ownerid = o.id AND c.make = 'Honda'",
    "UPDATE car SET price = price * 1.05 WHERE year > 2001",
    "SELECT AVG(price) FROM car WHERE make = 'Ford'",
    "SELECT id, year FROM car WHERE year BETWEEN 1998 AND 2004 ORDER BY id",
    "DELETE FROM car WHERE price < 4000",
    "SELECT COUNT(*) FROM car WHERE price <= 30000",
    "UPDATE owner SET salary = salary + 100 WHERE city = 'Ottawa'",
    "SELECT o.city, COUNT(*) FROM owner o, car c "
    "WHERE c.ownerid = o.id GROUP BY o.city",
    "INSERT INTO car (id, ownerid, make, model, year, price) "
    "VALUES (9001, 3, 'Toyota', 'Camry', 2006, 31000.0)",
    "SELECT id, make FROM car WHERE make = 'Toyota'",
    "SELECT id FROM owner WHERE salary BETWEEN 3000 AND 9000",
    "DELETE FROM owner WHERE id > 9000",
    "SELECT COUNT(*) FROM owner",
]


def _build_db():
    return build_mini_db(n_owners=200, n_cars=600, seed=7)


def _base_config():
    return EngineConfig.with_jits(s_max=0.4, sample_size=150)


def _parallel_engine(engine_factory, **overrides) -> Engine:
    config = _base_config()
    config.scan_workers = overrides.pop("scan_workers", 4)
    config.parallel_threshold_rows = overrides.pop(
        "parallel_threshold_rows", 64
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return engine_factory(_build_db(), config)


def test_differential_mixed_workload_across_all_modes():
    """sequential / threaded / process engines agree statement-by-
    statement and end in byte-identical state (the CI smoke check)."""
    engines = run_differential(
        MIXED_WORKLOAD, _build_db, _base_config, modes=MODES
    )
    try:
        par = engines["process"].stats_snapshot()["parallel"]
        assert par["parallel_calls"] > 0, "process mode never went parallel"
        assert par["fallbacks"] == 0
        assert par["process_path"] == "enabled"
    finally:
        for engine in engines.values():
            engine.shutdown()


def test_parallel_selects_match_reference(engine_factory):
    engine = _parallel_engine(engine_factory)
    for sql in [s for s in MIXED_WORKLOAD if s.startswith("SELECT")]:
        result = engine.execute(sql)
        block = build_query_graph(parse_select(sql), engine.database)
        assert sorted(result.rows) == sorted(
            run_reference(block, engine.database)
        ), sql
    assert engine.stats_snapshot()["parallel"]["parallel_calls"] > 0


def test_parallel_dml_targets_same_rows(engine_factory):
    par = _parallel_engine(engine_factory)
    seq = engine_factory(_build_db(), _base_config())
    for sql in MIXED_WORKLOAD:
        r_par, r_seq = par.execute(sql), seq.execute(sql)
        if r_par.rows is None:
            assert r_par.affected_rows == r_seq.affected_rows, sql
    for name in par.database.table_names():
        t_par, t_seq = par.database.table(name), seq.database.table(name)
        assert t_par.row_count == t_seq.row_count, name
        assert t_par.fetch_rows(
            None, t_par.schema.column_names()
        ) == t_seq.fetch_rows(None, t_seq.schema.column_names()), name


def test_export_reused_until_epoch_changes(engine_factory):
    """Read-only scans reuse one export; DML bumps the table epoch and
    forces exactly one re-export on the next scan."""
    engine = _parallel_engine(engine_factory)
    query = "SELECT id FROM car WHERE price > 20000"
    engine.execute(query)
    exports_after_first = engine.parallel.registry.exports
    engine.execute(query)
    engine.execute(query)
    assert engine.parallel.registry.exports == exports_after_first
    engine.execute("UPDATE car SET price = price + 1 WHERE year > 2003")
    engine.execute(query)
    assert engine.parallel.registry.exports > exports_after_first


def test_drop_create_same_epoch_workers_see_new_data(engine_factory):
    """DROP + CREATE under the same name restarts the epoch counter, so
    both table generations can reach the same epoch number; workers must
    re-attach to the new export (keyed by export id), not serve the
    dropped table's cached arrays."""
    engine = _parallel_engine(engine_factory, scan_workers=2)

    def build(value: float):
        engine.execute("CREATE TABLE gen (id INT, v FLOAT)")
        table = engine.database.table("gen")
        n = 200
        table.insert_columns(
            {
                "id": np.arange(n, dtype=np.int64),
                "v": np.full(n, value),
            }
        )
        return table

    query = "SELECT COUNT(*) FROM gen WHERE v >= 2.0"
    first = build(1.0)
    assert engine.execute(query).rows[0][0] == 0  # warm worker caches
    engine.execute("DROP TABLE gen")
    second = build(5.0)
    assert second.version == first.version  # same epoch, new generation
    assert engine.execute(query).rows[0][0] == 200
    snap = engine.stats_snapshot()["parallel"]
    assert snap["parallel_calls"] >= 2
    assert snap["fallbacks"] == 0


def test_runstats_parallel_matches_sequential(engine_factory):
    """The sharded per-column RUNSTATS pass lands identical catalog
    statistics (histograms included) to the sequential pass."""
    engine = _parallel_engine(engine_factory)
    cat_par, cat_seq = SystemCatalog(), SystemCatalog()
    run_runstats(
        engine.database, cat_par, "car", now=5, parallel=engine.parallel
    )
    run_runstats(engine.database, cat_seq, "car", now=5)
    assert engine.stats_snapshot()["parallel"]["parallel_calls"] > 0
    table = engine.database.table("car")
    for column in table.schema.column_names():
        s_par = cat_par.column_stats("car", column)
        s_seq = cat_seq.column_stats("car", column)
        assert s_par.n_distinct == s_seq.n_distinct, column
        assert s_par.min_value == s_seq.min_value, column
        assert s_par.max_value == s_seq.max_value, column
        assert s_par.row_count == s_seq.row_count, column
        assert s_par.frequent_values == s_seq.frequent_values, column
        assert repr(s_par.histogram) == repr(s_seq.histogram), column


def test_engine_runstats_entry_point_uses_pool(engine_factory):
    engine = _parallel_engine(engine_factory)
    engine.collect_general_statistics()
    snap = engine.stats_snapshot()
    assert snap["parallel"]["parallel_calls"] > 0
    for name in engine.database.table_names():
        stats = engine.catalog.table_stats(name)
        assert stats is not None
        assert stats.cardinality == float(
            engine.database.table(name).row_count
        )


def test_jits_collection_stats_identical(engine_factory):
    """JITS sample-selectivity evaluation through the pool produces the
    same archive/history contents as the in-process path."""
    par = _parallel_engine(engine_factory)
    seq = engine_factory(_build_db(), _base_config())
    for sql in [s for s in MIXED_WORKLOAD if s.startswith("SELECT")] * 2:
        par.execute(sql)
        seq.execute(sql)
    assert stats_fingerprint(par, full=True) == stats_fingerprint(
        seq, full=True
    )
    assert par.jits.total_collections > 0


def test_shutdown_unlinks_all_segments():
    from repro.storage.shm import list_segments

    before = set(list_segments())
    db = _build_db()
    config = _base_config()
    config.scan_workers = 2
    config.parallel_threshold_rows = 64
    engine = Engine(db, config)
    engine.execute("SELECT id FROM car WHERE price > 10000")
    engine.execute("SELECT id FROM owner WHERE salary > 2000")
    assert set(list_segments()) - before, "scans should have exported"
    engine.shutdown()
    assert set(list_segments()) - before == set()
    engine.shutdown()  # idempotent


def test_below_threshold_stays_inline(engine_factory):
    engine = _parallel_engine(engine_factory, parallel_threshold_rows=10_000)
    engine.execute("SELECT id FROM car WHERE price > 20000")
    snap = engine.stats_snapshot()["parallel"]
    assert snap["parallel_calls"] == 0
    assert snap["tables_exported"] == 0


def test_workers_zero_with_cost_is_sequential_baseline(engine_factory):
    """scan_workers=0 + scan_cost_per_row>0 runs the same kernels inline
    over a single shard — the benchmark's modeled sequential engine."""
    config = _base_config()
    config.scan_workers = 0
    config.scan_cost_per_row = 1e-7
    config.parallel_threshold_rows = 64
    engine = engine_factory(_build_db(), config)
    ref = engine_factory(_build_db(), _base_config())
    sql = "SELECT id, price FROM car WHERE price > 20000 AND year >= 2000"
    assert sorted(engine.execute(sql).rows) == sorted(ref.execute(sql).rows)
    snap = engine.stats_snapshot()["parallel"]
    assert snap["inline_calls"] > 0
    assert snap["parallel_calls"] == 0


def test_two_registries_in_one_process_do_not_collide():
    """Two engines in one interpreter export segments with distinct
    names (process-global sequence), so neither falls back."""
    from repro.storage.shm import ShmRegistry

    table = _build_db().table("car")
    r1, r2 = ShmRegistry(), ShmRegistry()
    try:
        names1 = {s.shm_name for s in r1.export(table).segments}
        names2 = {s.shm_name for s in r2.export(table).segments}
        assert names1 and names2 and not (names1 & names2)
    finally:
        r1.close()
        r2.close()


def test_pool_shm_round_trip_property():
    """Raw pool + registry round-trip: sharded kernel results through
    worker processes equal the same kernels run on the live arrays."""
    from repro.executor.parallel import WorkerPool, encode_predicates
    from repro.executor.parallel.kernels import scan_shard
    from repro.predicates import LocalPredicate, PredOp
    from repro.storage.shm import ShmRegistry

    db = _build_db()
    table = db.table("car")
    predicates = [
        LocalPredicate("car", "price", PredOp.GT, (15000.0,)),
        LocalPredicate("car", "year", PredOp.GE, (2000,)),
    ]
    phys = encode_predicates(table, predicates)
    assert phys is not None
    arrays = {
        name.lower(): table.column_data(name)
        for name in table.schema.column_names()
    }
    n = table.row_count
    bounds = [(i * n // 4, (i + 1) * n // 4) for i in range(4)]
    want = np.concatenate(
        [scan_shard(arrays, phys, s, t) for s, t in bounds]
    )

    registry = ShmRegistry()
    pool = WorkerPool(workers=2)
    try:
        payload = registry.export(table)
        tasks = [
            ("scan", payload, dict(preds=phys, start=s, stop=t))
            for s, t in bounds
        ]
        got = np.concatenate(pool.run_tasks(tasks))
    finally:
        pool.close()
        registry.close()
    np.testing.assert_array_equal(got, want)
