"""Expression evaluation over batches."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.executor import Batch, ColumnVector, eval_bool, eval_expr
from repro.sql import ast
from repro.storage import StringDictionary
from repro.types import DataType


def sample_batch():
    d1 = StringDictionary(["red", "blue"])
    d2 = StringDictionary(["blue", "green", "red"])
    return Batch(
        {
            ("t", "x"): ColumnVector(np.array([1, 2, 3]), DataType.INT),
            ("t", "y"): ColumnVector(np.array([1.5, 0.5, 3.0]), DataType.FLOAT),
            ("t", "c1"): ColumnVector(np.array([0, 1, 0]), DataType.STRING, d1),
            ("u", "c2"): ColumnVector(np.array([2, 0, 1]), DataType.STRING, d2),
        },
        3,
    )


def col(alias, name):
    return ast.ColumnRef(name=name, qualifier=alias)


def test_literal_broadcast():
    out = eval_expr(ast.Literal(7), sample_batch())
    assert out.values.tolist() == [7, 7, 7]


def test_column_lookup():
    out = eval_expr(col("t", "x"), sample_batch())
    assert out.values.tolist() == [1, 2, 3]


def test_arithmetic():
    expr = ast.BinaryArith(
        "+", col("t", "x"), ast.BinaryArith("*", col("t", "y"), ast.Literal(2))
    )
    out = eval_expr(expr, sample_batch())
    assert out.values.tolist() == [4.0, 3.0, 9.0]
    assert out.dtype is DataType.FLOAT


def test_int_arithmetic_stays_int():
    expr = ast.BinaryArith("-", col("t", "x"), ast.Literal(1))
    out = eval_expr(expr, sample_batch())
    assert out.dtype is DataType.INT


def test_division_always_float():
    expr = ast.BinaryArith("/", col("t", "x"), ast.Literal(2))
    out = eval_expr(expr, sample_batch())
    assert out.dtype is DataType.FLOAT
    assert out.values.tolist() == [0.5, 1.0, 1.5]


def test_unary_minus():
    out = eval_expr(ast.UnaryArith("-", col("t", "x")), sample_batch())
    assert out.values.tolist() == [-1, -2, -3]


def test_string_arithmetic_rejected():
    with pytest.raises(ExecutionError):
        eval_expr(ast.BinaryArith("+", col("t", "c1"), ast.Literal(1)), sample_batch())


def test_aggregate_without_resolver_rejected():
    agg = ast.Aggregate(ast.AggFunc.COUNT, None)
    with pytest.raises(ExecutionError):
        eval_expr(agg, sample_batch())


def test_numeric_comparisons():
    expr = ast.Comparison(ast.CompareOp.GT, col("t", "x"), ast.Literal(1))
    assert eval_bool(expr, sample_batch()).tolist() == [False, True, True]
    expr = ast.Comparison(ast.CompareOp.LE, col("t", "y"), col("t", "x"))
    assert eval_bool(expr, sample_batch()).tolist() == [False, True, True]


def test_string_literal_comparison():
    expr = ast.Comparison(ast.CompareOp.EQ, col("t", "c1"), ast.Literal("red"))
    assert eval_bool(expr, sample_batch()).tolist() == [True, False, True]


def test_string_missing_literal_matches_nothing():
    expr = ast.Comparison(ast.CompareOp.EQ, col("t", "c1"), ast.Literal("mauve"))
    assert eval_bool(expr, sample_batch()).tolist() == [False, False, False]


def test_cross_dictionary_equality():
    # c1 = [red, blue, red]; c2 = [red, blue, green] in their own dicts.
    expr = ast.Comparison(ast.CompareOp.EQ, col("t", "c1"), col("u", "c2"))
    assert eval_bool(expr, sample_batch()).tolist() == [True, True, False]


def test_string_numeric_comparison_rejected():
    expr = ast.Comparison(ast.CompareOp.EQ, col("t", "c1"), col("t", "x"))
    with pytest.raises(ExecutionError):
        eval_bool(expr, sample_batch())


def test_string_order_comparison_rejected():
    expr = ast.Comparison(ast.CompareOp.LT, col("t", "c1"), ast.Literal("z"))
    with pytest.raises(ExecutionError):
        eval_bool(expr, sample_batch())


def test_between():
    expr = ast.BetweenExpr(col("t", "x"), ast.Literal(2), ast.Literal(3))
    assert eval_bool(expr, sample_batch()).tolist() == [False, True, True]
    negated = ast.BetweenExpr(
        col("t", "x"), ast.Literal(2), ast.Literal(3), negated=True
    )
    assert eval_bool(negated, sample_batch()).tolist() == [True, False, False]


def test_in_list_strings():
    expr = ast.InListExpr(
        col("t", "c1"), (ast.Literal("blue"), ast.Literal("mauve"))
    )
    assert eval_bool(expr, sample_batch()).tolist() == [False, True, False]


def test_boolean_connectives():
    gt1 = ast.Comparison(ast.CompareOp.GT, col("t", "x"), ast.Literal(1))
    lt3 = ast.Comparison(ast.CompareOp.LT, col("t", "x"), ast.Literal(3))
    assert eval_bool(ast.AndExpr((gt1, lt3)), sample_batch()).tolist() == [
        False, True, False,
    ]
    assert eval_bool(ast.OrExpr((gt1, lt3)), sample_batch()).tolist() == [
        True, True, True,
    ]
    assert eval_bool(ast.NotExpr(gt1), sample_batch()).tolist() == [
        True, False, False,
    ]
