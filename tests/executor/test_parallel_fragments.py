"""Morsel-driven plan fragments: differential, fallback and adaptive tests.

The invariant throughout: pushing whole plan fragments (fused
aggregates, partitioned hash joins, shard-local sort/distinct) onto the
worker pool is purely an execution strategy — results, statistics
feedback and final state are byte-identical to the sequential operators,
and any pool failure degrades to in-process execution, never to a wrong
answer.
"""

from __future__ import annotations

import warnings

import pytest

from repro.engine import Engine, EngineConfig
from repro.executor import run_reference
from repro.executor.parallel.manager import ParallelScanManager
from repro.server import ReproServer, connect
from repro.sql import build_query_graph, parse_select
from tests.conftest import build_mini_db
from tests.harness.differential import run_differential

# Fragment-heavy workload: every statement's root is an eligible
# Aggregate / HashJoin / Sort / Distinct over plain SeqScan leaves.
FRAGMENT_WORKLOAD = [
    # Partitioned hash joins
    "SELECT o.name, c.model FROM car c, owner o "
    "WHERE c.ownerid = o.id AND c.year >= 2000",
    "SELECT o.city, c.make FROM car c, owner o "
    "WHERE c.ownerid = o.id AND c.price > 15000",
    # Fused grouped aggregates (multi-key, HAVING, keyless extremes)
    "SELECT make, model, COUNT(*) FROM car GROUP BY make, model",
    "SELECT make, COUNT(*), AVG(year) FROM car "
    "GROUP BY make HAVING COUNT(*) >= 5",
    "SELECT city, COUNT(*), MIN(salary) FROM owner GROUP BY city",
    "SELECT MIN(year), MAX(price), COUNT(*) FROM car WHERE price > 10000",
    # Exact float SUM/AVG partials and string MIN/MAX over rank arrays
    "SELECT make, SUM(price), AVG(price) FROM car GROUP BY make",
    "SELECT city, MIN(name), MAX(name), SUM(salary) FROM owner GROUP BY city",
    "SELECT SUM(salary), AVG(salary), MIN(city), MAX(city) FROM owner",
    # Shard-local sorts (numeric DESC and dictionary-ranked strings)
    "SELECT year, price FROM car WHERE make = 'Toyota' ORDER BY year DESC",
    "SELECT model FROM car WHERE year >= 1998 ORDER BY model",
    # Shard-local distinct
    "SELECT DISTINCT make FROM car",
    "SELECT DISTINCT city FROM owner WHERE salary >= 3000",
]

FRAGMENT_KINDS = ("aggregate", "join", "sort", "distinct")


def _build_db():
    return build_mini_db(n_owners=200, n_cars=600, seed=7)


def _base_config():
    return EngineConfig.with_jits(s_max=0.4, sample_size=150)


def _parallel_engine(engine_factory, **overrides) -> Engine:
    config = _base_config()
    config.scan_workers = overrides.pop("scan_workers", 4)
    config.parallel_threshold_rows = overrides.pop(
        "parallel_threshold_rows", 64
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return engine_factory(_build_db(), config)


def test_fragment_differential_sequential_vs_process():
    """Every fragment kind dispatches, and per-statement results, final
    state and the full statistics fingerprint (scan feedback included)
    match the sequential engine byte-for-byte."""
    engines = run_differential(
        FRAGMENT_WORKLOAD, _build_db, _base_config,
        modes=("sequential", "process"),
    )
    try:
        par = engines["process"].stats_snapshot()["parallel"]
        for kind in FRAGMENT_KINDS:
            assert par["fragments"].get(kind), f"no {kind} fragment ran"
        assert par["fallbacks"] == 0
        assert par["process_path"] == "enabled"
    finally:
        for engine in engines.values():
            engine.shutdown()


def test_fragment_results_match_reference(engine_factory):
    engine = _parallel_engine(engine_factory)
    for sql in FRAGMENT_WORKLOAD:
        result = engine.execute(sql)
        block = build_query_graph(parse_select(sql), engine.database)
        assert sorted(result.rows) == sorted(
            run_reference(block, engine.database)
        ), sql
    fragments = engine.stats_snapshot()["parallel"]["fragments"]
    for kind in FRAGMENT_KINDS:
        assert fragments.get(kind), f"no {kind} fragment ran"


def test_float_and_string_aggregates_fuse(engine_factory):
    """Float SUM/AVG and string MIN/MAX no longer decline fragment
    dispatch, and the fused float sums are exactly rounded."""
    import math

    engine = _parallel_engine(engine_factory)
    sequential = engine_factory(_build_db(), _base_config())
    queries = [
        "SELECT make, SUM(price), AVG(price) FROM car GROUP BY make",
        "SELECT SUM(salary), MIN(city), MAX(city) FROM owner",
        # Zero matching rows: the empty-group global path, dictionary
        # columns included.
        "SELECT SUM(price), MIN(model) FROM car WHERE year > 3000",
    ]
    for sql in queries:
        assert repr(engine.execute(sql).rows) == repr(
            sequential.execute(sql).rows
        ), sql
    fragments = engine.stats_snapshot()["parallel"]["fragments"]
    assert fragments.get("aggregate", 0) >= len(queries)

    table = engine.database.table("owner")
    expected = math.fsum(
        float(v) for v in table.column_data("salary").astype("float64")
    )
    total = engine.execute("SELECT SUM(salary) FROM owner").rows[0][0]
    assert total == expected


def test_fragment_pool_failure_falls_back_in_process(engine_factory):
    """Killing the pool mid-session: the next fragment warns once, falls
    back in-process with identical results, and the process path stays
    disabled (silent inline fragments) afterwards."""
    engine = _parallel_engine(engine_factory)
    expected = [engine.execute(sql).rows for sql in FRAGMENT_WORKLOAD]
    before = dict(engine.stats_snapshot()["parallel"]["fragments"])

    engine.parallel.pool.close()
    with pytest.warns(RuntimeWarning, match="fell back to in-process"):
        rows = engine.execute(FRAGMENT_WORKLOAD[0]).rows
    assert rows == expected[0]

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # sticky disable: no more warnings
        for sql, want in zip(FRAGMENT_WORKLOAD[1:], expected[1:]):
            assert engine.execute(sql).rows == want, sql
    par = engine.stats_snapshot()["parallel"]
    assert par["process_path"] == "disabled"
    assert par["fallbacks"] >= 1
    for kind in FRAGMENT_KINDS:  # fragments still run, just inline
        assert par["fragments"][kind] > before[kind], kind


def test_adaptive_rebalance_moves_shard_bounds():
    """Skewed per-row cost: after one timed dispatch the next dispatch's
    shard bounds deviate from the uniform split toward equal latency."""
    db = build_mini_db(n_owners=50, n_cars=600, seed=7)
    table = db.table("car")
    manager = ParallelScanManager(workers=2, threshold_rows=1)
    manager._disabled = True  # inline execution still feeds the profile
    try:
        n = table.row_count
        uniform = manager._shard_bounds(n)
        assert manager._shard_bounds(n, "car") == uniform  # no profile yet

        # id mass grows toward the tail, so the skew kernel makes the
        # second uniform shard slower than the first.
        manager.run_ranged(
            table, "skew", dict(column="id", unit=2e-7), "skew test"
        )
        rebalanced = manager._shard_bounds(n, "car")
        assert rebalanced != uniform
        assert rebalanced[0] == (0, rebalanced[0][1])
        assert rebalanced[-1][1] == n
        assert manager.stats()["rebalances"] >= 1

        # Later dispatches actually run over the rebalanced bounds.
        out = manager.run_ranged(
            table, "skew", dict(column="id", unit=0.0), "skew test"
        )
        assert sum(out) == n and len(out) == 2
        assert manager.rebalances >= 2
    finally:
        manager.close()


def test_fragment_stats_surface_through_server_wire():
    """Per-shard latency, rebalance and fragment counters ride the
    server's stats frame (the ``engine.stats_snapshot()`` passthrough)."""
    db = build_mini_db(n_owners=200, n_cars=600, seed=7)
    config = _base_config()
    config.scan_workers = 2
    config.parallel_threshold_rows = 64
    engine = Engine(db, config)
    srv = ReproServer(engine, port=0).start_in_thread()
    try:
        with connect(port=srv.port) as client:
            for sql in FRAGMENT_WORKLOAD[:4]:
                client.execute(sql)
            stats = client.stats()
        par = stats["parallel"]
        assert par["fragments"].get("join")
        assert par["fragments"].get("aggregate")
        assert par["shard_latency"]["samples"] > 0
        assert par["shard_latency"]["p95_ms"] >= par["shard_latency"]["p50_ms"]
        assert "rebalances" in par
    finally:
        srv.stop_from_thread()
        engine.shutdown()
