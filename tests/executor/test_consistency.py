"""Randomized end-to-end consistency: optimized executor == reference.

Hypothesis generates small random queries over a compact database; whatever
plan the optimizer picks (with or without statistics), the result set must
match the row-at-a-time reference executor.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, DataType, make_schema
from repro.catalog import SystemCatalog, run_runstats
from repro.executor import PlanExecutor, run_reference
from repro.optimizer import Optimizer, StatsContext
from repro.sql import build_query_graph, parse_select

_DB = None
_CATALOG = None


def get_db():
    global _DB, _CATALOG
    if _DB is None:
        db = Database()
        db.create_table(
            make_schema(
                "r",
                [("id", DataType.INT), ("k", DataType.INT), ("s", DataType.STRING)],
                primary_key="id",
            )
        )
        db.create_table(
            make_schema(
                "l",
                [("id", DataType.INT), ("rid", DataType.INT), ("v", DataType.FLOAT)],
                primary_key="id",
            )
        )
        rng = np.random.default_rng(11)
        n_r, n_l = 40, 80
        db.table("r").insert_columns(
            {
                "id": np.arange(n_r),
                "k": rng.integers(0, 6, n_r),
                "s": [["aa", "bb", "cc"][int(i)] for i in rng.integers(0, 3, n_r)],
            }
        )
        db.table("l").insert_columns(
            {
                "id": np.arange(n_l),
                "rid": rng.integers(0, n_r, n_l),
                "v": np.round(rng.uniform(0, 10, n_l), 2),
            }
        )
        db.create_hash_index("l", "rid")
        catalog = SystemCatalog()
        for name in db.table_names():
            run_runstats(db, catalog, name, now=1)
        _DB, _CATALOG = db, catalog
    return _DB, _CATALOG


comparison_ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def single_table_query(draw):
    parts = []
    n = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            op = draw(comparison_ops)
            value = draw(st.integers(min_value=-1, max_value=7))
            parts.append(f"k {op} {value}")
        elif kind == 1:
            value = draw(st.sampled_from(["aa", "bb", "cc", "zz"]))
            op = draw(st.sampled_from(["=", "<>"]))
            parts.append(f"s {op} '{value}'")
        elif kind == 2:
            lo = draw(st.integers(min_value=-1, max_value=6))
            hi = draw(st.integers(min_value=lo, max_value=8))
            parts.append(f"k BETWEEN {lo} AND {hi}")
        else:
            items = draw(
                st.lists(
                    st.sampled_from(["aa", "bb", "zz"]), min_size=1, max_size=3
                )
            )
            quoted = ", ".join(f"'{i}'" for i in items)
            parts.append(f"s IN ({quoted})")
    where = f" WHERE {' AND '.join(parts)}" if parts else ""
    return f"SELECT id, k, s FROM r{where}"


@st.composite
def join_query(draw):
    op = draw(comparison_ops)
    value = draw(st.integers(min_value=0, max_value=6))
    extra = draw(st.booleans())
    where = f"l.rid = r.id AND r.k {op} {value}"
    if extra:
        bound = draw(st.floats(min_value=0, max_value=10))
        where += f" AND l.v <= {bound:.2f}"
    return f"SELECT r.id, l.id, l.v FROM r, l WHERE {where}"


def assert_consistent(sql, with_stats):
    db, catalog = get_db()
    block = build_query_graph(parse_select(sql), db)
    ctx = StatsContext(db, catalog if with_stats else SystemCatalog())
    optimized = Optimizer(ctx).optimize(block)
    got = sorted(PlanExecutor(db).execute(optimized).rows())
    want = sorted(run_reference(block, db))
    assert got == want, f"mismatch for {sql}\n{optimized.explain()}"


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(single_table_query(), st.booleans())
def test_single_table_queries_consistent(sql, with_stats):
    assert_consistent(sql, with_stats)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(join_query(), st.booleans())
def test_join_queries_consistent(sql, with_stats):
    assert_consistent(sql, with_stats)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(["k", "s"]),
    st.sampled_from(["COUNT(*)", "SUM(k)", "AVG(k)", "MIN(k)", "MAX(k)"]),
    st.booleans(),
)
def test_aggregate_queries_consistent(key, agg, with_stats):
    sql = f"SELECT {key}, {agg} FROM r GROUP BY {key}"
    assert_consistent(sql, with_stats)
