"""Column vectors, batches and dictionary translation."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.executor import Batch, ColumnVector, batch_from_table, translate_codes
from repro.storage import StringDictionary
from repro.types import DataType


def vec(values, dtype=DataType.INT, dictionary=None):
    return ColumnVector(np.asarray(values), dtype, dictionary)


def test_string_vector_requires_dictionary():
    with pytest.raises(ExecutionError):
        ColumnVector(np.array([0]), DataType.STRING)


def test_take_and_mask():
    v = vec([10, 20, 30])
    assert v.take(np.array([2, 0])).values.tolist() == [30, 10]
    assert v.mask(np.array([True, False, True])).values.tolist() == [10, 30]


def test_decode_types():
    assert vec([1, 2]).decode() == [1, 2]
    assert vec([1.5], DataType.FLOAT).decode() == [1.5]
    d = StringDictionary(["a", "b"])
    assert vec([1, 0], DataType.STRING, d).decode() == ["b", "a"]


def test_sort_ranks_for_strings():
    d = StringDictionary(["zebra", "apple"])  # codes 0, 1
    v = vec([0, 1], DataType.STRING, d)
    ranks = v.sort_ranks()
    assert ranks[0] > ranks[1]  # zebra sorts after apple


def test_batch_length_validation():
    with pytest.raises(ExecutionError):
        Batch({("t", "a"): vec([1, 2])}, 3)


def test_batch_column_access_case_insensitive():
    b = Batch({("t", "a"): vec([1])}, 1)
    assert b.column("T", "A").values.tolist() == [1]
    assert b.has_column("t", "a")
    with pytest.raises(ExecutionError):
        b.column("t", "zz")


def test_batch_merge_disjoint():
    left = Batch({("l", "a"): vec([1, 2])}, 2)
    right = Batch({("r", "b"): vec([3, 4])}, 2)
    merged = Batch.merge(left, right)
    assert set(merged.columns) == {("l", "a"), ("r", "b")}


def test_batch_merge_conflict():
    left = Batch({("t", "a"): vec([1])}, 1)
    with pytest.raises(ExecutionError):
        Batch.merge(left, left)


def test_batch_merge_length_mismatch():
    left = Batch({("l", "a"): vec([1])}, 1)
    right = Batch({("r", "b"): vec([1, 2])}, 2)
    with pytest.raises(ExecutionError):
        Batch.merge(left, right)


def test_batch_from_table_subset(mini_db):
    batch = batch_from_table(
        mini_db.table("car"), "c", np.array([0, 1]), ["make", "price"]
    )
    assert len(batch) == 2
    assert batch.has_column("c", "make")
    assert not batch.has_column("c", "year")


def test_translate_codes():
    src = StringDictionary(["a", "b", "c"])
    dst = StringDictionary(["c", "a"])
    out = translate_codes(src, dst, np.array([0, 1, 2]))
    assert out.tolist() == [1, -1, 0]


def test_translate_same_dictionary_is_identity():
    d = StringDictionary(["x"])
    codes = np.array([0])
    assert translate_codes(d, d, codes) is codes


def test_translate_empty():
    src = StringDictionary(["a"])
    dst = StringDictionary(["b"])
    out = translate_codes(src, dst, np.array([], dtype=np.int64))
    assert len(out) == 0
