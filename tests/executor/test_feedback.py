"""LEO-style feedback: errorfactor records from scan observations."""

import pytest

from repro.catalog import SystemCatalog
from repro.executor import PlanExecutor, collect_feedback
from repro.executor.feedback import FeedbackRecord
from repro.optimizer import Optimizer, StatsContext
from repro.predicates import LocalPredicate, PredOp, PredicateGroup
from repro.sql import build_query_graph, parse_select


def execute(sql, db, catalog):
    block = build_query_graph(parse_select(sql), db)
    optimized = Optimizer(StatsContext(db, catalog)).optimize(block)
    result = PlanExecutor(db).execute(optimized)
    return collect_feedback(optimized, result)


def test_errorfactor_is_estimate_over_actual():
    record = FeedbackRecord(
        table="t",
        group=PredicateGroup.of(
            LocalPredicate("t", "a", PredOp.EQ, (1,))
        ),
        statlist=(("a",),),
        source="catalog",
        estimated_selectivity=0.2,
        actual_selectivity=0.5,
    )
    assert record.errorfactor == pytest.approx(0.4)
    assert record.symmetric_accuracy == pytest.approx(0.4)


def test_symmetric_accuracy_for_overestimates():
    record = FeedbackRecord(
        table="t",
        group=PredicateGroup.of(LocalPredicate("t", "a", PredOp.EQ, (1,))),
        statlist=(),
        source="catalog",
        estimated_selectivity=0.8,
        actual_selectivity=0.2,
    )
    assert record.errorfactor == pytest.approx(4.0)
    assert record.symmetric_accuracy == pytest.approx(0.25)


def test_feedback_collected_for_filtered_scans(mini_db, mini_catalog):
    records = execute(
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'",
        mini_db,
        mini_catalog,
    )
    assert len(records) == 1
    record = records[0]
    assert record.table == "car"
    assert record.group.columns() == ("make", "model")
    assert record.statlist  # provenance captured
    # Correlated pair under independence: a real underestimate.
    assert record.errorfactor < 0.7


def test_accurate_estimate_scores_near_one(mini_db, mini_catalog):
    records = execute(
        "SELECT id FROM owner WHERE salary > 5000", mini_db, mini_catalog
    )
    assert len(records) == 1
    assert records[0].symmetric_accuracy > 0.9


def test_no_predicates_no_feedback(mini_db, mini_catalog):
    records = execute("SELECT id FROM owner", mini_db, mini_catalog)
    assert records == []


def test_zero_matches_keeps_errorfactor_finite(mini_db, mini_catalog):
    records = execute(
        "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Civic'",
        mini_db,
        mini_catalog,
    )
    assert len(records) == 1
    assert records[0].errorfactor < float("inf")
    assert records[0].actual_selectivity > 0.0  # floored


def test_join_query_feedback_per_alias(mini_db, mini_catalog):
    records = execute(
        "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id "
        "AND c.make = 'Ford' AND o.salary > 3000",
        mini_db,
        mini_catalog,
    )
    tables = {r.table for r in records}
    # Both table accesses produce feedback unless one was folded into an
    # index nested-loop probe (then only the scanned side reports).
    assert tables <= {"car", "owner"}
    assert len(records) >= 1
