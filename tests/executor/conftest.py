"""Fixtures for the executor test package.

Every test here gets a shared-memory leak check: any ``rjits`` segment
left in ``/dev/shm`` after a test is a bug (the registry unlinks on
``close()``/``shutdown()``), and leaked segments would poison later
tests' leak checks too.
"""

from __future__ import annotations

import pytest

from repro.storage.shm import list_segments


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Fail any test that leaves repro-owned /dev/shm segments behind."""
    before = set(list_segments())
    yield
    leaked = sorted(set(list_segments()) - before)
    assert not leaked, f"leaked shared-memory segments: {leaked}"


@pytest.fixture
def engine_factory():
    """Build engines and guarantee ``shutdown()`` at test teardown."""
    engines = []

    def build(db, config):
        from repro.engine import Engine

        engine = Engine(db, config)
        engines.append(engine)
        return engine

    yield build
    for engine in engines:
        engine.shutdown()
