"""Aggregation machinery in isolation."""

import numpy as np
import pytest

from repro.executor import Batch, ColumnVector, aggregate_batch, collect_aggregates
from repro.executor.aggregate import compute_aggregate, group_ids
from repro.sql import ast
from repro.storage import StringDictionary
from repro.types import DataType


def batch():
    d = StringDictionary(["x", "y"])
    return Batch(
        {
            ("t", "g"): ColumnVector(np.array([0, 1, 0, 1, 0]), DataType.STRING, d),
            ("t", "v"): ColumnVector(
                np.array([1.0, 2.0, 3.0, 4.0, 5.0]), DataType.FLOAT
            ),
            ("t", "k"): ColumnVector(np.array([1, 1, 2, 2, 2]), DataType.INT),
        },
        5,
    )


def gcol():
    return ast.ColumnRef(name="g", qualifier="t")


def vcol():
    return ast.ColumnRef(name="v", qualifier="t")


def test_group_ids_single_key():
    gids, n, reps = group_ids(batch(), (gcol(),))
    assert n == 2
    assert len(reps) == 2
    assert gids.tolist() == [gids[0], gids[1], gids[0], gids[1], gids[0]]


def test_group_ids_composite_key():
    keys = (gcol(), ast.ColumnRef(name="k", qualifier="t"))
    _, n, _ = group_ids(batch(), keys)
    assert n == 4  # (x,1), (y,1), (x,2), (y,2)


def test_group_ids_no_keys():
    gids, n, _ = group_ids(batch(), ())
    assert n == 1
    assert gids.tolist() == [0] * 5


def test_count_star():
    gids, n, _ = group_ids(batch(), (gcol(),))
    agg = ast.Aggregate(ast.AggFunc.COUNT, None)
    out = compute_aggregate(agg, batch(), gids, n)
    assert sorted(out.values.tolist()) == [2, 3]


def test_sum_avg():
    gids, n, _ = group_ids(batch(), (gcol(),))
    total = compute_aggregate(
        ast.Aggregate(ast.AggFunc.SUM, vcol()), batch(), gids, n
    )
    avg = compute_aggregate(
        ast.Aggregate(ast.AggFunc.AVG, vcol()), batch(), gids, n
    )
    assert sorted(total.values.tolist()) == [6.0, 9.0]
    assert sorted(avg.values.tolist()) == [3.0, 3.0]


def test_min_max_numeric():
    gids, n, _ = group_ids(batch(), (gcol(),))
    lo = compute_aggregate(
        ast.Aggregate(ast.AggFunc.MIN, vcol()), batch(), gids, n
    )
    hi = compute_aggregate(
        ast.Aggregate(ast.AggFunc.MAX, vcol()), batch(), gids, n
    )
    assert sorted(lo.values.tolist()) == [1.0, 2.0]
    assert sorted(hi.values.tolist()) == [4.0, 5.0]


def test_min_max_string():
    gids, n, _ = group_ids(batch(), ())
    g = ast.ColumnRef(name="g", qualifier="t")
    lo = compute_aggregate(ast.Aggregate(ast.AggFunc.MIN, g), batch(), gids, n)
    hi = compute_aggregate(ast.Aggregate(ast.AggFunc.MAX, g), batch(), gids, n)
    assert lo.decode() == ["x"]
    assert hi.decode() == ["y"]


def test_count_distinct():
    gids, n, _ = group_ids(batch(), ())
    k = ast.ColumnRef(name="k", qualifier="t")
    out = compute_aggregate(
        ast.Aggregate(ast.AggFunc.COUNT, k, distinct=True), batch(), gids, n
    )
    assert out.values.tolist() == [2]


def test_sum_distinct():
    gids, n, _ = group_ids(batch(), ())
    k = ast.ColumnRef(name="k", qualifier="t")
    out = compute_aggregate(
        ast.Aggregate(ast.AggFunc.SUM, k, distinct=True), batch(), gids, n
    )
    assert out.values.tolist() == [3]


def test_sum_over_strings_rejected():
    from repro.errors import ExecutionError

    gids, n, _ = group_ids(batch(), ())
    with pytest.raises(ExecutionError):
        compute_aggregate(
            ast.Aggregate(ast.AggFunc.SUM, gcol()), batch(), gids, n
        )


def test_collect_aggregates_dedupes():
    count = ast.Aggregate(ast.AggFunc.COUNT, None)
    expr1 = ast.BinaryArith("+", count, ast.Literal(1))
    expr2 = ast.Comparison(ast.CompareOp.GT, count, ast.Literal(2))
    found = collect_aggregates([expr1, expr2])
    assert found == [count]


def test_aggregate_batch_with_having():
    items = (
        ast.SelectItem(expr=gcol(), alias="g"),
        ast.SelectItem(expr=ast.Aggregate(ast.AggFunc.COUNT, None), alias="n"),
    )
    having = ast.Comparison(
        ast.CompareOp.GT, ast.Aggregate(ast.AggFunc.COUNT, None), ast.Literal(2)
    )
    out = aggregate_batch(batch(), (gcol(),), items, ("g", "n"), having)
    assert len(out) == 1
    assert out.column("", "g").decode() == ["x"]
    assert out.column("", "n").values.tolist() == [3]


def test_aggregate_batch_global_empty_input():
    empty = Batch(
        {("t", "v"): ColumnVector(np.array([], dtype=np.float64), DataType.FLOAT)},
        0,
    )
    items = (
        ast.SelectItem(expr=ast.Aggregate(ast.AggFunc.COUNT, None), alias="n"),
        ast.SelectItem(
            expr=ast.Aggregate(
                ast.AggFunc.SUM, ast.ColumnRef(name="v", qualifier="t")
            ),
            alias="s",
        ),
    )
    out = aggregate_batch(empty, (), items, ("n", "s"), None)
    assert len(out) == 1
    assert out.column("", "n").values.tolist() == [0]
    assert out.column("", "s").values.tolist() == [0]
