"""Seeded property tests for the sharded scan kernels.

The invariant under test: for any column data, predicate set and shard
layout (including empty and degenerate shards), running a kernel per
shard and merging in the parent equals running it once over a single
shard. Randomization is deterministic via ``repro.rng.make_rng``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.executor.parallel import encode_predicates, merge_aggregates
from repro.executor.parallel.kernels import (
    PhysPredicate,
    aggregate_shard,
    column_stats_shard,
    masks_shard,
    scan_shard,
)
from repro.catalog.runstats import column_stats_raw
from repro.predicates import LocalPredicate, PredOp, group_mask
from repro.rng import make_rng
from tests.conftest import build_mini_db

N_TRIALS = 25


def random_arrays(rng, n_rows: int):
    """Random physical columns: int64, float64 and dictionary codes
    (strings are scanned as their code arrays; ``codes`` includes runs
    and, sometimes, a single constant value)."""
    return {
        "i": rng.integers(-50, 50, size=n_rows).astype(np.int64),
        "f": np.round(rng.normal(0, 100, size=n_rows), 2),
        "s": rng.integers(0, max(1, rng.integers(1, 8)), size=n_rows).astype(
            np.float64
        ),
    }


def random_predicates(rng, arrays) -> tuple:
    preds = []
    for _ in range(rng.integers(0, 4)):
        column = ("i", "f", "s")[rng.integers(0, 3)]
        data = arrays[column]
        pick = float(data[rng.integers(0, len(data))]) if len(data) else 0.0
        op = ("EQ", "NE", "IN", "BETWEEN", "LT", "LE", "GT", "GE")[
            rng.integers(0, 8)
        ]
        if op == "IN":
            k = int(rng.integers(1, 4))
            values = tuple(
                float(data[rng.integers(0, len(data))]) if len(data) else 0.0
                for _ in range(k)
            )
            preds.append(PhysPredicate(column, op, values))
        elif op == "BETWEEN":
            lo, hi = sorted((pick, pick + float(rng.integers(0, 40))))
            preds.append(PhysPredicate(column, op, (lo, hi)))
        elif op in ("EQ", "NE") and rng.integers(0, 5) == 0:
            # A dictionary miss: the value never occurs (empty predicate,
            # the engine's analogue of matching against absent strings).
            preds.append(PhysPredicate(column, op, empty=True))
        else:
            preds.append(PhysPredicate(column, op, (pick,)))
    return tuple(preds)


def random_bounds(rng, n: int):
    """A partition of [0, n) with 1..6 shards; duplicated cut points make
    empty shards, and n == 0 collapses to one empty shard."""
    shards = int(rng.integers(1, 7))
    cuts = sorted(int(rng.integers(0, n + 1)) for _ in range(shards - 1))
    edges = [0] + cuts + [n]
    return list(zip(edges[:-1], edges[1:]))


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sharded_scan_equals_single_shard(trial):
    rng = make_rng(1000 + trial)
    n = int(rng.integers(0, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    bounds = random_bounds(rng, n)
    single = scan_shard(arrays, preds, 0, n)
    sharded = np.concatenate(
        [scan_shard(arrays, preds, s, t) for s, t in bounds]
    ) if bounds else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(sharded, single)


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sharded_masks_equal_single_shard(trial):
    rng = make_rng(2000 + trial)
    n = int(rng.integers(1, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    if not preds:
        preds = (PhysPredicate("i", "GE", (0.0,)),)
    rows = np.sort(
        rng.choice(n, size=int(rng.integers(0, n + 1)), replace=False)
    ).astype(np.int64)
    bounds = random_bounds(rng, len(rows))
    single = masks_shard(arrays, preds, rows)
    parts = [masks_shard(arrays, preds, rows[s:t]) for s, t in bounds]
    for i in range(len(preds)):
        merged = np.concatenate([part[i] for part in parts])
        np.testing.assert_array_equal(merged, single[i])


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sharded_aggregates_equal_single_shard(trial):
    rng = make_rng(3000 + trial)
    n = int(rng.integers(0, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    specs = (("count", "i"), ("sum", "f"), ("min", "i"), ("max", "f"))
    bounds = random_bounds(rng, n)
    single = merge_aggregates(specs, [aggregate_shard(arrays, preds, 0, n, specs)])
    partials = [aggregate_shard(arrays, preds, s, t, specs) for s, t in bounds]
    merged = merge_aggregates(specs, partials)
    assert len(merged) == len(single)
    for got, want in zip(merged, single):
        if want is None:
            assert got is None
        else:
            assert got == pytest.approx(want)


def test_empty_table_scan():
    arrays = {"i": np.empty(0, dtype=np.int64)}
    preds = (PhysPredicate("i", "GT", (0.0,)),)
    assert len(scan_shard(arrays, preds, 0, 0)) == 0
    assert len(masks_shard(arrays, preds, np.empty(0, dtype=np.int64))[0]) == 0


def test_all_constant_column_statistics_match():
    """Degenerate distributions (one distinct value — the closest thing
    this engine has to an all-NULL column) survive the kernel path."""
    data = np.full(257, 42.0)
    arrays = {"c": data}
    raw_kernel = column_stats_shard(
        arrays, "c", None, integral=True, scale=1.0, n_buckets=8, n_frequent=4
    )
    raw_direct = column_stats_raw(
        data, integral=True, scale=1.0, n_buckets=8, n_frequent=4
    )
    assert raw_kernel["n_distinct"] == raw_direct["n_distinct"] == 1.0
    assert raw_kernel["min_value"] == raw_direct["min_value"] == 42.0
    assert repr(raw_kernel["histogram"]) == repr(raw_direct["histogram"])


def test_empty_column_statistics():
    raw = column_stats_shard(
        {"c": np.empty(0)}, "c", None,
        integral=False, scale=1.0, n_buckets=8, n_frequent=4,
    )
    assert raw["n_distinct"] == 0.0 and raw["histogram"] is None


@pytest.mark.parametrize("trial", range(10))
def test_empty_string_predicates_on_dictionary_columns(trial):
    """EQ/IN on a string absent from the dictionary match nothing; NE on
    it matches everything — shard layout cannot change that."""
    rng = make_rng(4000 + trial)
    n = int(rng.integers(1, 200))
    arrays = random_arrays(rng, n)
    for op, want in (("EQ", 0), ("IN", 0), ("NE", n)):
        preds = (PhysPredicate("s", op, empty=True),)
        single = scan_shard(arrays, preds, 0, n)
        assert len(single) == want
        bounds = random_bounds(rng, n)
        sharded = np.concatenate(
            [scan_shard(arrays, preds, s, t) for s, t in bounds]
        )
        np.testing.assert_array_equal(sharded, single)


@pytest.mark.parametrize("trial", range(10))
def test_encoded_table_scan_matches_group_mask(trial):
    """End-to-end over a real table: encode_predicates + sharded kernels
    reproduce ``group_mask`` exactly, dictionary strings included."""
    rng = make_rng(5000 + trial)
    db = build_mini_db(n_owners=60, n_cars=180, seed=11)
    table = db.table("car")
    options = [
        LocalPredicate("car", "price", PredOp.GT, (float(rng.integers(2000, 60000)),)),
        LocalPredicate("car", "year", PredOp.BETWEEN,
                       (int(rng.integers(1995, 2003)), int(rng.integers(2003, 2010)))),
        LocalPredicate("car", "make", PredOp.EQ,
                       (("Toyota", "Honda", "Ford", "NoSuchMake")[rng.integers(0, 4)],)),
        LocalPredicate("car", "model", PredOp.IN, (("Camry", "Civic"))),
        LocalPredicate("car", "ownerid", PredOp.LE, (int(rng.integers(1, 60)),)),
    ]
    picked = [p for p in options if rng.integers(0, 2)] or options[:1]
    phys = encode_predicates(table, picked)
    assert phys is not None
    arrays = {
        name.lower(): table.column_data(name)
        for name in table.schema.column_names()
    }
    n = table.row_count
    bounds = random_bounds(rng, n)
    got = np.concatenate([scan_shard(arrays, phys, s, t) for s, t in bounds])
    want = np.flatnonzero(group_mask(table, picked)).astype(np.int64)
    np.testing.assert_array_equal(got, want)
