"""Seeded property tests for the sharded scan kernels.

The invariant under test: for any column data, predicate set and shard
layout (including empty and degenerate shards), running a kernel per
shard and merging in the parent equals running it once over a single
shard. Randomization is deterministic via ``repro.rng.make_rng``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.executor.parallel import encode_predicates, merge_aggregates
from repro.executor.parallel.fragments import (
    merge_group_partials,
    merge_sorted_runs,
)
from repro.executor.parallel.kernels import (
    PhysPredicate,
    aggregate_shard,
    column_stats_shard,
    combine_partials,
    distinct_shard,
    group_aggregate_shard,
    join_partition_shard,
    join_probe_partition,
    masks_shard,
    partition_codes,
    scan_shard,
    sort_shard,
)
from repro.executor.joinutil import equi_join_indices
from repro.catalog.runstats import column_stats_raw
from repro.predicates import LocalPredicate, PredOp, group_mask
from repro.rng import make_rng
from tests.conftest import build_mini_db

N_TRIALS = 25


def random_arrays(rng, n_rows: int):
    """Random physical columns: int64, float64 and dictionary codes
    (strings are scanned as their code arrays; ``codes`` includes runs
    and, sometimes, a single constant value)."""
    return {
        "i": rng.integers(-50, 50, size=n_rows).astype(np.int64),
        "f": np.round(rng.normal(0, 100, size=n_rows), 2),
        "s": rng.integers(0, max(1, rng.integers(1, 8)), size=n_rows).astype(
            np.float64
        ),
    }


def random_predicates(rng, arrays) -> tuple:
    preds = []
    for _ in range(rng.integers(0, 4)):
        column = ("i", "f", "s")[rng.integers(0, 3)]
        data = arrays[column]
        pick = float(data[rng.integers(0, len(data))]) if len(data) else 0.0
        op = ("EQ", "NE", "IN", "BETWEEN", "LT", "LE", "GT", "GE")[
            rng.integers(0, 8)
        ]
        if op == "IN":
            k = int(rng.integers(1, 4))
            values = tuple(
                float(data[rng.integers(0, len(data))]) if len(data) else 0.0
                for _ in range(k)
            )
            preds.append(PhysPredicate(column, op, values))
        elif op == "BETWEEN":
            lo, hi = sorted((pick, pick + float(rng.integers(0, 40))))
            preds.append(PhysPredicate(column, op, (lo, hi)))
        elif op in ("EQ", "NE") and rng.integers(0, 5) == 0:
            # A dictionary miss: the value never occurs (empty predicate,
            # the engine's analogue of matching against absent strings).
            preds.append(PhysPredicate(column, op, empty=True))
        else:
            preds.append(PhysPredicate(column, op, (pick,)))
    return tuple(preds)


def random_bounds(rng, n: int):
    """A partition of [0, n) with 1..6 shards; duplicated cut points make
    empty shards, and n == 0 collapses to one empty shard."""
    shards = int(rng.integers(1, 7))
    cuts = sorted(int(rng.integers(0, n + 1)) for _ in range(shards - 1))
    edges = [0] + cuts + [n]
    return list(zip(edges[:-1], edges[1:]))


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sharded_scan_equals_single_shard(trial):
    rng = make_rng(1000 + trial)
    n = int(rng.integers(0, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    bounds = random_bounds(rng, n)
    single = scan_shard(arrays, preds, 0, n)
    sharded = np.concatenate(
        [scan_shard(arrays, preds, s, t) for s, t in bounds]
    ) if bounds else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(sharded, single)


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sharded_masks_equal_single_shard(trial):
    rng = make_rng(2000 + trial)
    n = int(rng.integers(1, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    if not preds:
        preds = (PhysPredicate("i", "GE", (0.0,)),)
    rows = np.sort(
        rng.choice(n, size=int(rng.integers(0, n + 1)), replace=False)
    ).astype(np.int64)
    bounds = random_bounds(rng, len(rows))
    single = masks_shard(arrays, preds, rows)
    parts = [masks_shard(arrays, preds, rows[s:t]) for s, t in bounds]
    for i in range(len(preds)):
        merged = np.concatenate([part[i] for part in parts])
        np.testing.assert_array_equal(merged, single[i])


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sharded_aggregates_equal_single_shard(trial):
    rng = make_rng(3000 + trial)
    n = int(rng.integers(0, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    specs = (("count", "i"), ("sum", "f"), ("min", "i"), ("max", "f"))
    bounds = random_bounds(rng, n)
    single = merge_aggregates(specs, [aggregate_shard(arrays, preds, 0, n, specs)])
    partials = [aggregate_shard(arrays, preds, s, t, specs) for s, t in bounds]
    merged = merge_aggregates(specs, partials)
    assert len(merged) == len(single)
    for got, want in zip(merged, single):
        if want is None:
            assert got is None
        else:
            assert got == pytest.approx(want)


def test_empty_table_scan():
    arrays = {"i": np.empty(0, dtype=np.int64)}
    preds = (PhysPredicate("i", "GT", (0.0,)),)
    assert len(scan_shard(arrays, preds, 0, 0)) == 0
    assert len(masks_shard(arrays, preds, np.empty(0, dtype=np.int64))[0]) == 0


def test_all_constant_column_statistics_match():
    """Degenerate distributions (one distinct value — the closest thing
    this engine has to an all-NULL column) survive the kernel path."""
    data = np.full(257, 42.0)
    arrays = {"c": data}
    raw_kernel = column_stats_shard(
        arrays, "c", None, integral=True, scale=1.0, n_buckets=8, n_frequent=4
    )
    raw_direct = column_stats_raw(
        data, integral=True, scale=1.0, n_buckets=8, n_frequent=4
    )
    assert raw_kernel["n_distinct"] == raw_direct["n_distinct"] == 1.0
    assert raw_kernel["min_value"] == raw_direct["min_value"] == 42.0
    assert repr(raw_kernel["histogram"]) == repr(raw_direct["histogram"])


def test_empty_column_statistics():
    raw = column_stats_shard(
        {"c": np.empty(0)}, "c", None,
        integral=False, scale=1.0, n_buckets=8, n_frequent=4,
    )
    assert raw["n_distinct"] == 0.0 and raw["histogram"] is None


@pytest.mark.parametrize("trial", range(10))
def test_empty_string_predicates_on_dictionary_columns(trial):
    """EQ/IN on a string absent from the dictionary match nothing; NE on
    it matches everything — shard layout cannot change that."""
    rng = make_rng(4000 + trial)
    n = int(rng.integers(1, 200))
    arrays = random_arrays(rng, n)
    for op, want in (("EQ", 0), ("IN", 0), ("NE", n)):
        preds = (PhysPredicate("s", op, empty=True),)
        single = scan_shard(arrays, preds, 0, n)
        assert len(single) == want
        bounds = random_bounds(rng, n)
        sharded = np.concatenate(
            [scan_shard(arrays, preds, s, t) for s, t in bounds]
        )
        np.testing.assert_array_equal(sharded, single)


@pytest.mark.parametrize("trial", range(10))
def test_encoded_table_scan_matches_group_mask(trial):
    """End-to-end over a real table: encode_predicates + sharded kernels
    reproduce ``group_mask`` exactly, dictionary strings included."""
    rng = make_rng(5000 + trial)
    db = build_mini_db(n_owners=60, n_cars=180, seed=11)
    table = db.table("car")
    options = [
        LocalPredicate("car", "price", PredOp.GT, (float(rng.integers(2000, 60000)),)),
        LocalPredicate("car", "year", PredOp.BETWEEN,
                       (int(rng.integers(1995, 2003)), int(rng.integers(2003, 2010)))),
        LocalPredicate("car", "make", PredOp.EQ,
                       (("Toyota", "Honda", "Ford", "NoSuchMake")[rng.integers(0, 4)],)),
        LocalPredicate("car", "model", PredOp.IN, (("Camry", "Civic"))),
        LocalPredicate("car", "ownerid", PredOp.LE, (int(rng.integers(1, 60)),)),
    ]
    picked = [p for p in options if rng.integers(0, 2)] or options[:1]
    phys = encode_predicates(table, picked)
    assert phys is not None
    arrays = {
        name.lower(): table.column_data(name)
        for name in table.schema.column_names()
    }
    n = table.row_count
    bounds = random_bounds(rng, n)
    got = np.concatenate([scan_shard(arrays, phys, s, t) for s, t in bounds])
    want = np.flatnonzero(group_mask(table, picked)).astype(np.int64)
    np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Fragment kernels: grouped partials, join partitioning, sort/distinct
# ----------------------------------------------------------------------
GROUP_SPECS = (("count", ""), ("sum", "i"), ("min", "i"), ("max", "f"))


def _assert_group_results_equal(got, want):
    g_keys, g_prims, g_groups, g_matched = got
    w_keys, w_prims, w_groups, w_matched = want
    assert (g_groups, g_matched) == (w_groups, w_matched)
    for g, w in zip(g_keys, w_keys):
        np.testing.assert_array_equal(g, w)
    for g, w in zip(g_prims, w_prims):
        np.testing.assert_array_equal(g, w)


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_group_partials_invariant_under_shard_layout(trial):
    """group_aggregate_shard partials merged across any shard layout
    equal the single-shard result — split boundaries cannot leak into
    group keys, counts, integer sums or extremes."""
    rng = make_rng(6000 + trial)
    n = int(rng.integers(0, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    keys = ((), ("s",), ("s", "i"))[rng.integers(0, 3)]
    bounds = random_bounds(rng, n)
    single = merge_group_partials(
        [group_aggregate_shard(arrays, preds, 0, n, keys, GROUP_SPECS)],
        len(keys),
        GROUP_SPECS,
    )
    parts = [
        group_aggregate_shard(arrays, preds, s, t, keys, GROUP_SPECS)
        for s, t in bounds
    ]
    merged = merge_group_partials(parts, len(keys), GROUP_SPECS)
    _assert_group_results_equal(merged, single)


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_group_partials_merge_is_associative(trial):
    """Merging shard partials in one pass equals merging two merged
    halves: the merged shape is itself a valid partial, so any merge
    tree yields the same groups."""
    rng = make_rng(6500 + trial)
    n = int(rng.integers(1, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    keys = ((), ("s",), ("s", "i"))[rng.integers(0, 3)]
    bounds = random_bounds(rng, n)
    parts = [
        group_aggregate_shard(arrays, preds, s, t, keys, GROUP_SPECS)
        for s, t in bounds
    ]
    flat = merge_group_partials(parts, len(keys), GROUP_SPECS)
    cut = int(rng.integers(0, len(parts) + 1))
    halves = []
    for half in (parts[:cut], parts[cut:]):
        if half:
            k, p, _, m = merge_group_partials(half, len(keys), GROUP_SPECS)
            halves.append((k, p, m))
    nested = merge_group_partials(halves or parts, len(keys), GROUP_SPECS)
    _assert_group_results_equal(nested, flat)


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_combine_partials_is_associative(trial):
    """The keyless merge is associative under any grouping of shards."""
    rng = make_rng(7000 + trial)
    n = int(rng.integers(0, 300))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    specs = (("count", "i"), ("sum", "f"), ("min", "i"), ("max", "f"))
    bounds = random_bounds(rng, n)
    parts = [aggregate_shard(arrays, preds, s, t, specs) for s, t in bounds]
    flat = merge_aggregates(specs, parts)
    cut = int(rng.integers(0, len(parts) + 1))
    grouped = [
        combine_partials(specs, half)
        for half in (parts[:cut], parts[cut:])
        if half
    ]
    nested = merge_aggregates(specs, grouped or parts)
    for got, want in zip(nested, flat):
        if want is None:
            assert got is None
        else:
            assert got == pytest.approx(want)


def test_partition_codes_canonicalize_across_dtypes():
    """Equal key values co-partition regardless of physical dtype (an
    int64 join column meeting a float64 one) and of zero sign; codes
    stay in range and integral keys spread across partitions."""
    ints = np.arange(-500, 500, dtype=np.int64)
    floats = ints.astype(np.float64)
    for n_parts in (1, 2, 4, 7):
        ci = partition_codes(ints, n_parts)
        cf = partition_codes(floats, n_parts)
        np.testing.assert_array_equal(ci, cf)
        assert ci.min() >= 0 and ci.max() < n_parts
    np.testing.assert_array_equal(
        partition_codes(np.array([-0.0]), 4),
        partition_codes(np.array([0.0]), 4),
    )
    counts = np.bincount(partition_codes(np.arange(10000), 4), minlength=4)
    assert counts.min() > 0 and counts.max() < 2 * counts.mean()


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_partitioned_join_invariant_under_layout(trial):
    """Partition + per-partition probe, under any shard layout and any
    partition count, reproduces the direct equi-join over the filtered
    inputs in sequential (probe_row, build_row) pair order."""
    rng = make_rng(8000 + trial)
    n_probe = int(rng.integers(1, 300))
    n_build = int(rng.integers(1, 120))
    domain = int(rng.integers(1, 40))
    probe_arrays = {
        "k": rng.integers(0, domain, size=n_probe).astype(np.float64),
        "i": rng.integers(-50, 50, size=n_probe).astype(np.int64),
    }
    build_arrays = {
        "k": rng.integers(0, domain, size=n_build).astype(np.float64),
        "j": rng.integers(-50, 50, size=n_build).astype(np.int64),
    }
    probe_preds = (PhysPredicate("i", "GE", (float(rng.integers(-50, 20)),)),)
    build_preds = (PhysPredicate("j", "LE", (float(rng.integers(-20, 50)),)),)
    n_parts = int(rng.integers(1, 6))

    probe_parts = [
        join_partition_shard(probe_arrays, probe_preds, s, t, "k", n_parts)
        for s, t in random_bounds(rng, n_probe)
    ]
    build_parts = [
        join_partition_shard(build_arrays, build_preds, s, t, "k", n_parts)
        for s, t in random_bounds(rng, n_build)
    ]
    tables = {"p": probe_arrays, "b": build_arrays}
    pairs = []
    for p in range(n_parts):
        probe_rows = np.concatenate([shard[0][p] for shard in probe_parts])
        build_rows = np.concatenate([shard[0][p] for shard in build_parts])
        if len(probe_rows) and len(build_rows):
            pairs.append(
                join_probe_partition(
                    tables, "p", "b", probe_rows, build_rows,
                    (("k", "k", None),),
                )
            )
    if pairs:
        l_rows = np.concatenate([pair[0] for pair in pairs])
        r_rows = np.concatenate([pair[1] for pair in pairs])
        order = np.lexsort((r_rows, l_rows))
        l_rows, r_rows = l_rows[order], r_rows[order]
    else:
        l_rows = r_rows = np.empty(0, dtype=np.int64)

    probe_idx = scan_shard(probe_arrays, probe_preds, 0, n_probe)
    build_idx = scan_shard(build_arrays, build_preds, 0, n_build)
    l_ref, r_ref = equi_join_indices(
        probe_arrays["k"][probe_idx], build_arrays["k"][build_idx]
    )
    np.testing.assert_array_equal(l_rows, probe_idx[l_ref])
    np.testing.assert_array_equal(r_rows, build_idx[r_ref])


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_sorted_runs_merge_invariant_under_layout(trial):
    """Shard-local sorts merged by merge_sorted_runs equal the
    single-shard sort, descending keys and string ranks included."""
    rng = make_rng(9000 + trial)
    n = int(rng.integers(1, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    ranks = np.argsort(rng.permutation(16)).astype(np.int64)
    all_keys = [
        ("i", bool(rng.integers(0, 2)), None),
        ("f", bool(rng.integers(0, 2)), None),
        ("s", bool(rng.integers(0, 2)), ranks),
    ]
    keys = tuple(all_keys[: int(rng.integers(1, 4))])
    single_rows, _, single_matched = sort_shard(arrays, preds, 0, n, keys)
    runs = [
        sort_shard(arrays, preds, s, t, keys)
        for s, t in random_bounds(rng, n)
    ]
    rows = np.concatenate([run[0] for run in runs])
    if len(rows) > 1:
        key_arrays = [
            np.concatenate([run[1][j] for run in runs])
            for j in range(len(keys))
        ]
        rows = rows[merge_sorted_runs(key_arrays)]
    assert sum(run[2] for run in runs) == single_matched
    np.testing.assert_array_equal(rows, single_rows)


def test_merge_sorted_runs_overflow_falls_back_to_lexsort():
    """Enough high-cardinality keys overflow the composite code; the
    merge must detect that and still order correctly."""
    rng = make_rng(424242)
    key_arrays = [
        rng.integers(0, 256, size=500).astype(np.int64) for _ in range(9)
    ]
    got = merge_sorted_runs(key_arrays)
    want = np.lexsort(tuple(reversed(key_arrays)))
    np.testing.assert_array_equal(got, want)


@pytest.mark.parametrize("trial", range(N_TRIALS))
def test_distinct_shards_merge_invariant_under_layout(trial):
    """Shard-local dedup + parent first-occurrence merge equals the
    single-shard distinct for any split boundaries."""
    rng = make_rng(9500 + trial)
    n = int(rng.integers(1, 400))
    arrays = random_arrays(rng, n)
    preds = random_predicates(rng, arrays)
    columns = (("s",), ("s", "i"))[rng.integers(0, 2)]
    single_rows, _, single_matched = distinct_shard(
        arrays, preds, 0, n, columns
    )
    runs = [
        distinct_shard(arrays, preds, s, t, columns)
        for s, t in random_bounds(rng, n)
    ]
    rows = np.concatenate([run[0] for run in runs])
    if len(rows):
        values = [
            np.concatenate([run[1][j] for run in runs])
            for j in range(len(columns))
        ]
        code_columns = [
            np.unique(v, return_inverse=True)[1].astype(np.int64)
            for v in values
        ]
        stacked = np.stack(code_columns, axis=1)
        _, first_idx = np.unique(stacked, axis=0, return_index=True)
        rows = rows[np.sort(first_idx)]
    assert sum(run[2] for run in runs) == single_matched
    np.testing.assert_array_equal(rows, single_rows)
