"""Operator execution vs the naive reference executor."""

import numpy as np
import pytest

from repro.catalog import SystemCatalog
from repro.executor import PlanExecutor, run_reference
from repro.optimizer import (
    HashJoin,
    IndexNLJoin,
    IndexScan,
    NestedLoopJoin,
    Optimizer,
    SeqScan,
    StatsContext,
)
from repro.sql import build_query_graph, parse_select


def run_both(sql, db, catalog=None, ordered=False):
    ctx = StatsContext(db, catalog if catalog is not None else SystemCatalog())
    block = build_query_graph(parse_select(sql), db)
    optimized = Optimizer(ctx).optimize(block)
    result = PlanExecutor(db).execute(optimized)
    got = result.rows()
    want = run_reference(block, db)
    if not ordered:
        got, want = sorted(got), sorted(want)
    return got, want, optimized


CASES = [
    "SELECT id FROM owner WHERE salary > 5000",
    "SELECT id, name FROM owner WHERE city = 'Ottawa' AND salary <= 4000",
    "SELECT id FROM car WHERE make = 'Toyota' AND model = 'Camry'",
    "SELECT id FROM car WHERE year BETWEEN 2000 AND 2004",
    "SELECT id FROM car WHERE make IN ('Honda', 'Ford')",
    "SELECT id FROM car WHERE make <> 'Toyota' AND year > 2003",
    "SELECT id FROM owner WHERE salary > 2000 OR city = 'Toronto'",
    "SELECT o.name, c.price FROM car c, owner o WHERE c.ownerid = o.id "
    "AND c.make = 'Ford' AND o.salary > 5000",
    "SELECT c.id FROM car c, owner o WHERE c.ownerid = o.id "
    "AND c.price > o.salary",
    "SELECT make, COUNT(*) AS n, AVG(price) FROM car GROUP BY make",
    "SELECT city, COUNT(*) AS n FROM owner GROUP BY city HAVING COUNT(*) > 10",
    "SELECT COUNT(*), SUM(salary), MIN(salary), MAX(salary) FROM owner",
    "SELECT COUNT(DISTINCT make) FROM car",
    "SELECT DISTINCT make FROM car",
    "SELECT v.n FROM (SELECT city, COUNT(*) AS n FROM owner GROUP BY city) v "
    "WHERE v.n > 5",
    "SELECT c.make, o.city FROM car c, owner o WHERE c.ownerid = o.id "
    "AND o.city = 'Waterloo' AND c.year >= 2001",
]


@pytest.mark.parametrize("sql", CASES)
def test_matches_reference(sql, mini_db, mini_catalog):
    got, want, _ = run_both(sql, mini_db, mini_catalog)
    assert got == want


@pytest.mark.parametrize("sql", CASES)
def test_matches_reference_without_stats(sql, mini_db):
    """Plan choice must never change results, however bad the stats."""
    got, want, _ = run_both(sql, mini_db)
    assert got == want


def test_order_by_limit(mini_db, mini_catalog):
    got, want, _ = run_both(
        "SELECT id, price FROM car WHERE make = 'Toyota' "
        "ORDER BY price DESC LIMIT 5",
        mini_db,
        mini_catalog,
        ordered=True,
    )
    assert got == want
    assert len(got) == 5


def test_order_by_string_column(mini_db, mini_catalog):
    got, want, _ = run_both(
        "SELECT name FROM owner WHERE salary > 8500 ORDER BY name",
        mini_db,
        mini_catalog,
        ordered=True,
    )
    assert got == want


def test_actuals_recorded_on_plan(mini_db, mini_catalog):
    _, _, optimized = run_both(
        "SELECT id FROM car WHERE make = 'Toyota'", mini_db, mini_catalog
    )
    for node in optimized.root.walk():
        assert node.actual_rows is not None


def test_scan_observations(mini_db, mini_catalog):
    ctx = StatsContext(mini_db, mini_catalog)
    block = build_query_graph(
        parse_select("SELECT id FROM car WHERE make = 'Toyota'"), mini_db
    )
    optimized = Optimizer(ctx).optimize(block)
    result = PlanExecutor(mini_db).execute(optimized)
    obs = result.scan_observations["car"]
    assert obs.base_rows == mini_db.table("car").row_count
    assert 0 < obs.matched_rows < obs.base_rows


def test_forced_index_nl_join_matches_hash(mini_db, mini_catalog):
    """Whatever join method runs, results agree."""
    sql = (
        "SELECT o.name FROM car c, owner o WHERE c.ownerid = o.id "
        "AND c.make = 'Honda'"
    )
    ctx = StatsContext(mini_db, mini_catalog)
    block = build_query_graph(parse_select(sql), mini_db)
    optimized = Optimizer(ctx).optimize(block)

    joins = [
        n
        for n in optimized.root.walk()
        if isinstance(n, (HashJoin, IndexNLJoin, NestedLoopJoin))
    ]
    assert joins, "expected a join in the plan"
    got = sorted(PlanExecutor(mini_db).execute(optimized).rows())
    want = sorted(run_reference(block, mini_db))
    assert got == want


def test_index_scan_execution(mini_db, mini_catalog):
    ctx = StatsContext(mini_db, mini_catalog)
    block = build_query_graph(
        parse_select("SELECT make FROM car WHERE id = 7"), mini_db
    )
    optimized = Optimizer(ctx).optimize(block)
    scans = [n for n in optimized.root.walk() if isinstance(n, IndexScan)]
    assert scans
    rows = PlanExecutor(mini_db).execute(optimized).rows()
    assert rows == run_reference(block, mini_db)


def test_empty_result(mini_db, mini_catalog):
    got, want, _ = run_both(
        "SELECT id FROM car WHERE make = 'NoSuchMake'", mini_db, mini_catalog
    )
    assert got == want == []


def test_aggregate_over_empty_input(mini_db, mini_catalog):
    got, want, _ = run_both(
        "SELECT COUNT(*) FROM car WHERE make = 'NoSuchMake'",
        mini_db,
        mini_catalog,
    )
    assert got == want == [(0,)]


def test_group_by_over_empty_input(mini_db, mini_catalog):
    got, want, _ = run_both(
        "SELECT make, COUNT(*) FROM car WHERE make = 'NoSuchMake' "
        "GROUP BY make",
        mini_db,
        mini_catalog,
    )
    assert got == want == []


def test_projection_arithmetic(mini_db, mini_catalog):
    got, want, _ = run_both(
        "SELECT id, price / 2 + 1 FROM car WHERE id < 5",
        mini_db,
        mini_catalog,
    )
    assert got == want
