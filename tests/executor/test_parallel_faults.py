"""Fault injection for the process-parallel scan path.

Contract: worker death is survived (respawn + retry, same answer);
shared-memory failures degrade to in-process execution with a warning —
never a wrong answer, never an orphaned /dev/shm segment (the autouse
``no_shm_leaks`` fixture checks every test here).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.executor.parallel import PoolUnavailable, WorkerPool
from repro.storage.shm import ColumnSegment, ShmError, TablePayload
from tests.conftest import build_mini_db


def _engine(engine_factory, **overrides) -> Engine:
    config = EngineConfig.with_jits(s_max=0.4, sample_size=150)
    config.scan_workers = overrides.pop("scan_workers", 2)
    config.parallel_threshold_rows = overrides.pop(
        "parallel_threshold_rows", 64
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return engine_factory(build_mini_db(200, 600, seed=7), config)


QUERY = "SELECT id, price FROM car WHERE year >= 2000 AND make = 'Toyota'"


def test_sigkill_mid_task_respawns_and_retries():
    """A worker killed while its task sleeps is detected, respawned, and
    the task re-runs to completion on the fresh worker."""
    pool = WorkerPool(workers=2, task_timeout=30.0)
    pool.start()
    victim = pool.pids()[0]
    tasks = [("sleep", None, dict(duration=0.4)) for _ in range(4)]

    def kill_soon():
        time.sleep(0.15)  # land inside the first sleep round
        os.kill(victim, signal.SIGKILL)

    killer = threading.Thread(target=kill_soon)
    killer.start()
    try:
        results = pool.run_tasks(tasks)
    finally:
        killer.join()
        pool.close()
    assert results == [0.4] * 4
    assert pool.respawns >= 1
    assert victim not in pool.pids()


def test_torn_result_message_recycles_worker_not_caller():
    """A worker SIGKILLed mid-``put`` leaves a half-written message on
    its result pipe; the deserialization failure must recycle the worker
    (fresh channels, resend) instead of failing the caller's query."""
    pool = WorkerPool(workers=1, task_timeout=30.0)
    pool.start()
    victim = pool.pids()[0]
    # Inject undecodable bytes directly on the result channel, exactly
    # what a torn pickle from a killed worker looks like to the parent.
    pool._result_qs[0]._writer.send_bytes(b"\x80\x04 torn pickle")
    try:
        assert pool.run_tasks(
            [("sleep", None, dict(duration=0.01))]
        ) == [0.01]
    finally:
        pool.close()
    assert pool.respawns >= 1
    assert victim not in pool.pids()


def test_sigkill_idle_worker_engine_query_still_correct(engine_factory):
    """Killing a pooled worker between statements: the next scan detects
    the death at dispatch, respawns, and returns the right rows."""
    par = _engine(engine_factory)
    seq = engine_factory(
        build_mini_db(200, 600, seed=7),
        EngineConfig.with_jits(s_max=0.4, sample_size=150),
    )
    want = sorted(seq.execute(QUERY).rows)
    assert sorted(par.execute(QUERY).rows) == want  # pool warm
    os.kill(par.parallel.pool.pids()[0], signal.SIGKILL)
    time.sleep(0.05)
    assert sorted(par.execute(QUERY).rows) == want
    snap = par.stats_snapshot()["parallel"]
    assert snap["worker_respawns"] >= 1
    assert snap["fallbacks"] == 0
    assert snap["process_path"] == "enabled"


def test_attach_failure_falls_back_with_warning(engine_factory):
    """Workers failing to attach (bogus segment names) must not poison
    the answer: the engine warns once and recomputes in-process."""
    par = _engine(engine_factory)
    seq = engine_factory(
        build_mini_db(200, 600, seed=7),
        EngineConfig.with_jits(s_max=0.4, sample_size=150),
    )
    want = sorted(seq.execute(QUERY).rows)

    table = par.database.table("car")
    bogus = TablePayload(
        table="car",
        epoch=table.version,
        n_rows=table.row_count,
        segments=tuple(
            ColumnSegment(
                column=c.lower(),
                shm_name=f"rjits-no-such-{i}",
                dtype="<f8",
                length=table.row_count,
            )
            for i, c in enumerate(table.schema.column_names())
        ),
    )
    original = par.parallel.registry.export
    par.parallel.registry.export = lambda t: (
        bogus if t.name.lower() == "car" else original(t)
    )
    try:
        with pytest.warns(RuntimeWarning, match="fell back to in-process"):
            got = par.execute(QUERY)
        assert sorted(got.rows) == want
        assert par.stats_snapshot()["parallel"]["fallbacks"] >= 1
    finally:
        par.parallel.registry.export = original


def test_export_failure_falls_back_with_warning(engine_factory):
    par = _engine(engine_factory)

    def broken_export(table):
        raise ShmError("simulated /dev/shm exhaustion")

    par.parallel.registry.export = broken_export
    with pytest.warns(RuntimeWarning, match="fell back to in-process"):
        result = par.execute(QUERY)
    assert result.rows is not None
    snap = par.stats_snapshot()["parallel"]
    assert snap["fallbacks"] >= 1
    assert snap["inline_calls"] >= 1
    # ShmError is transient, not sticky: the pool stays available.
    assert snap["process_path"] == "enabled"


def test_dead_pool_disables_process_path_stickily(engine_factory):
    """A pool that cannot make progress (closed underneath the manager)
    triggers exactly one warned fallback, then the engine runs inline
    without re-probing the dead pool."""
    par = _engine(engine_factory)
    par.execute(QUERY)  # warm
    par.parallel.pool.close()
    with pytest.warns(RuntimeWarning, match="fell back to in-process"):
        first = par.execute(QUERY)
    assert first.rows is not None
    snap = par.stats_snapshot()["parallel"]
    assert snap["process_path"] == "disabled"
    fallbacks = snap["fallbacks"]
    # Subsequent statements go straight inline: correct, no new warning.
    import warnings as warnings_mod

    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("error", RuntimeWarning)
        second = par.execute(QUERY)
    assert second.rows is not None
    assert par.stats_snapshot()["parallel"]["fallbacks"] == fallbacks


def test_worker_kernel_error_is_not_fatal():
    """A kernel raising inside a worker surfaces as WorkerError and the
    pool keeps serving subsequent tasks on live workers."""
    from repro.executor.parallel import WorkerError

    pool = WorkerPool(workers=2)
    try:
        with pytest.raises(WorkerError):
            pool.run_tasks([("no-such-kernel", None, {})])
        assert pool.run_tasks(
            [("sleep", None, dict(duration=0.01))]
        ) == [0.01]
    finally:
        pool.close()


def test_respawned_pool_reuses_shared_memory(engine_factory):
    """After a crash + respawn the fresh worker re-attaches to the same
    exported epoch (no extra export)."""
    par = _engine(engine_factory)
    par.execute(QUERY)
    exports = par.parallel.registry.exports
    os.kill(par.parallel.pool.pids()[-1], signal.SIGKILL)
    time.sleep(0.05)
    par.execute(QUERY)
    assert par.parallel.registry.exports == exports
    assert par.parallel.pool.respawns >= 1
