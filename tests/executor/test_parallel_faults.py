"""Fault injection for the process-parallel scan path.

Contract: worker death is survived (respawn + retry, same answer);
shared-memory failures degrade to in-process execution with a warning —
never a wrong answer, never an orphaned /dev/shm segment (the autouse
``no_shm_leaks`` fixture checks every test here).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.engine import Engine, EngineConfig
from repro.executor.parallel import PoolUnavailable, WorkerPool
from repro.storage.shm import ColumnSegment, ShmError, TablePayload
from tests.conftest import build_mini_db


def _engine(engine_factory, **overrides) -> Engine:
    config = EngineConfig.with_jits(s_max=0.4, sample_size=150)
    config.scan_workers = overrides.pop("scan_workers", 2)
    config.parallel_threshold_rows = overrides.pop(
        "parallel_threshold_rows", 64
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return engine_factory(build_mini_db(200, 600, seed=7), config)


QUERY = "SELECT id, price FROM car WHERE year >= 2000 AND make = 'Toyota'"


def test_sigkill_mid_task_respawns_and_retries():
    """A worker killed while its task sleeps is detected, respawned, and
    the task re-runs to completion on the fresh worker."""
    pool = WorkerPool(workers=2, task_timeout=30.0)
    pool.start()
    victim = pool.pids()[0]
    tasks = [("sleep", None, dict(duration=0.4)) for _ in range(4)]

    def kill_soon():
        time.sleep(0.15)  # land inside the first sleep round
        os.kill(victim, signal.SIGKILL)

    killer = threading.Thread(target=kill_soon)
    killer.start()
    try:
        results = pool.run_tasks(tasks)
    finally:
        killer.join()
        pool.close()
    assert results == [0.4] * 4
    assert pool.respawns >= 1
    assert victim not in pool.pids()


def test_torn_result_message_recycles_worker_not_caller():
    """A worker SIGKILLed mid-``put`` leaves a half-written message on
    its result pipe; the deserialization failure must recycle the worker
    (fresh channels, resend) instead of failing the caller's query."""
    pool = WorkerPool(workers=1, task_timeout=30.0)
    pool.start()
    victim = pool.pids()[0]
    # Inject undecodable bytes directly on the result channel, exactly
    # what a torn pickle from a killed worker looks like to the parent.
    pool._result_qs[0]._writer.send_bytes(b"\x80\x04 torn pickle")
    try:
        assert pool.run_tasks(
            [("sleep", None, dict(duration=0.01))]
        ) == [0.01]
    finally:
        pool.close()
    assert pool.respawns >= 1
    assert victim not in pool.pids()


def test_sigkill_idle_worker_engine_query_still_correct(engine_factory):
    """Killing a pooled worker between statements: the next scan detects
    the death at dispatch, respawns, and returns the right rows."""
    par = _engine(engine_factory)
    seq = engine_factory(
        build_mini_db(200, 600, seed=7),
        EngineConfig.with_jits(s_max=0.4, sample_size=150),
    )
    want = sorted(seq.execute(QUERY).rows)
    assert sorted(par.execute(QUERY).rows) == want  # pool warm
    os.kill(par.parallel.pool.pids()[0], signal.SIGKILL)
    time.sleep(0.05)
    assert sorted(par.execute(QUERY).rows) == want
    snap = par.stats_snapshot()["parallel"]
    assert snap["worker_respawns"] >= 1
    assert snap["fallbacks"] == 0
    assert snap["process_path"] == "enabled"


def test_attach_failure_falls_back_with_warning(engine_factory):
    """Workers failing to attach (bogus segment names) must not poison
    the answer: the engine warns once and recomputes in-process."""
    par = _engine(engine_factory)
    seq = engine_factory(
        build_mini_db(200, 600, seed=7),
        EngineConfig.with_jits(s_max=0.4, sample_size=150),
    )
    want = sorted(seq.execute(QUERY).rows)

    table = par.database.table("car")
    bogus = TablePayload(
        table="car",
        epoch=table.version,
        n_rows=table.row_count,
        segments=tuple(
            ColumnSegment(
                column=c.lower(),
                shm_name=f"rjits-no-such-{i}",
                dtype="<f8",
                length=table.row_count,
            )
            for i, c in enumerate(table.schema.column_names())
        ),
    )
    original = par.parallel.registry.export
    par.parallel.registry.export = lambda t: (
        bogus if t.name.lower() == "car" else original(t)
    )
    try:
        with pytest.warns(RuntimeWarning, match="fell back to in-process"):
            got = par.execute(QUERY)
        assert sorted(got.rows) == want
        assert par.stats_snapshot()["parallel"]["fallbacks"] >= 1
    finally:
        par.parallel.registry.export = original


def test_export_failure_falls_back_with_warning(engine_factory):
    par = _engine(engine_factory)

    def broken_export(table):
        raise ShmError("simulated /dev/shm exhaustion")

    par.parallel.registry.export = broken_export
    with pytest.warns(RuntimeWarning, match="fell back to in-process"):
        result = par.execute(QUERY)
    assert result.rows is not None
    snap = par.stats_snapshot()["parallel"]
    assert snap["fallbacks"] >= 1
    assert snap["inline_calls"] >= 1
    # ShmError is transient, not sticky: the pool stays available.
    assert snap["process_path"] == "enabled"


def test_dead_pool_disables_process_path_stickily(engine_factory):
    """A pool that cannot make progress (closed underneath the manager)
    triggers exactly one warned fallback, then the engine runs inline
    without re-probing the dead pool."""
    par = _engine(engine_factory)
    par.execute(QUERY)  # warm
    par.parallel.pool.close()
    with pytest.warns(RuntimeWarning, match="fell back to in-process"):
        first = par.execute(QUERY)
    assert first.rows is not None
    snap = par.stats_snapshot()["parallel"]
    assert snap["process_path"] == "disabled"
    fallbacks = snap["fallbacks"]
    # Subsequent statements go straight inline: correct, no new warning.
    import warnings as warnings_mod

    with warnings_mod.catch_warnings():
        warnings_mod.simplefilter("error", RuntimeWarning)
        second = par.execute(QUERY)
    assert second.rows is not None
    assert par.stats_snapshot()["parallel"]["fallbacks"] == fallbacks


def test_worker_kernel_error_is_not_fatal():
    """A kernel raising inside a worker surfaces as WorkerError and the
    pool keeps serving subsequent tasks on live workers."""
    from repro.executor.parallel import WorkerError

    pool = WorkerPool(workers=2)
    try:
        with pytest.raises(WorkerError):
            pool.run_tasks([("no-such-kernel", None, {})])
        assert pool.run_tasks(
            [("sleep", None, dict(duration=0.01))]
        ) == [0.01]
    finally:
        pool.close()


def test_sigkill_mid_scan_of_old_snapshot_reattaches_same_epoch():
    """SIGKILL a worker while a batch over an *old* pinned generation is
    in flight: the respawned worker must re-attach the same epoch export
    and the scan must still see the old generation's values."""
    from repro.storage.shm import ShmRegistry

    db = build_mini_db(60, 200, seed=11)
    table = db.live_table("car")
    pinned = table.pin_current()
    old_max = float(np.max(pinned.column_data("price")))
    # Move the live table ahead so the pinned generation is historical.
    table.update_rows(
        np.arange(table.row_count), {"price": old_max * 10.0}
    )
    assert table.version > pinned.version

    registry = ShmRegistry()
    pool = WorkerPool(workers=2, task_timeout=30.0)
    pool.start()
    try:
        payload = registry.export(pinned)
        victim = pool.pids()[0]
        stats_kwargs = dict(
            column="price",
            rows=None,
            integral=False,
            scale=1.0,
            n_buckets=8,
            n_frequent=4,
        )
        tasks = [("sleep", None, dict(duration=0.4)) for _ in range(3)] + [
            ("column_stats", payload, stats_kwargs)
        ]

        def kill_soon():
            time.sleep(0.15)  # land inside the first sleep round
            os.kill(victim, signal.SIGKILL)

        killer = threading.Thread(target=kill_soon)
        killer.start()
        try:
            results = pool.run_tasks(tasks)
        finally:
            killer.join()
        assert pool.respawns >= 1
        # The retried stats task attached the pinned epoch's segments:
        # it reports the OLD maximum, not the live table's.
        assert results[-1]["max_value"] == pytest.approx(old_max)
        assert float(np.max(table.column_data("price"))) > old_max
        # Same epoch export, no re-export happened.
        assert registry.export(pinned) is payload
        assert registry.exports == 1
    finally:
        pool.close()
        registry.close()
        pinned.release()


def test_as_of_scan_after_worker_death_reuses_epoch_export(engine_factory):
    """Engine-level: an AS OF statement pinned to a historical epoch
    survives a worker SIGKILL — respawn, re-attach, same rows, and no
    extra export of the old epoch."""
    par = _engine(engine_factory)
    seq = engine_factory(
        build_mini_db(200, 600, seed=7),
        EngineConfig.with_jits(s_max=0.4, sample_size=150),
    )
    want_old = sorted(seq.execute(QUERY).rows)
    assert sorted(par.execute(QUERY).rows) == want_old  # warm export
    stamp = par.database.live_table("car").snapshot_stamp
    par.execute("UPDATE car SET price = price + 100000 WHERE year >= 1990")
    as_of = f"{QUERY} AS OF {stamp}"
    assert sorted(par.execute(as_of).rows) == want_old
    exports_before = par.parallel.registry.exports
    os.kill(par.parallel.pool.pids()[0], signal.SIGKILL)
    time.sleep(0.05)
    assert sorted(par.execute(as_of).rows) == want_old
    snap = par.stats_snapshot()["parallel"]
    assert snap["worker_respawns"] >= 1
    assert snap["tables_exported"] == exports_before
    assert snap["fallbacks"] == 0


def test_drop_create_pinned_read_never_serves_new_tables_arrays():
    """DROP + CREATE while a reader stays pinned to the old generation:
    even when the re-created table's epoch numbering collides with the
    pinned epoch, the registry must never satisfy the pinned reader's
    export from the new table's arrays (identity check, the export-id
    regression pattern)."""
    from repro.storage.shm import ShmRegistry, WorkerAttachments

    db = build_mini_db(60, 200, seed=13)
    old = db.live_table("car")
    pinned = old.pin_current()
    old_prices = np.array(pinned.column_data("price"), copy=True)

    registry = ShmRegistry()
    attachments = WorkerAttachments()
    try:
        old_payload = registry.export(pinned)
        schema = old.schema
        db.drop_table("car")
        registry.release("car")

        new = db.create_table(schema)
        new.insert_rows(
            [
                {
                    "id": i,
                    "ownerid": 0,
                    "make": "Lada",
                    "model": "2101",
                    "year": 1970,
                    "price": -1.0,
                }
                for i in range(8)
            ]
        )
        # Epoch numbering restarted: drive the new table to the pinned
        # generation's epoch so a (name, epoch) keyed cache would alias.
        while new.version < pinned.version:
            new.update_rows(np.array([0]), {"price": -1.0})
        assert new.version == pinned.version

        new_payload = registry.export(new)
        assert new_payload.export_id != old_payload.export_id
        # The pinned reader exporting *after* the new table must get its
        # own generation back, not the colliding-epoch new export.
        again = registry.export(pinned)
        assert again.export_id != new_payload.export_id
        assert again.n_rows == pinned.row_count != new.row_count
        arrays = attachments.arrays(again)
        np.testing.assert_array_equal(arrays["price"], old_prices)
    finally:
        attachments.close()
        registry.close()
        pinned.release()


def test_respawned_pool_reuses_shared_memory(engine_factory):
    """After a crash + respawn the fresh worker re-attaches to the same
    exported epoch (no extra export)."""
    par = _engine(engine_factory)
    par.execute(QUERY)
    exports = par.parallel.registry.exports
    os.kill(par.parallel.pool.pids()[-1], signal.SIGKILL)
    time.sleep(0.05)
    par.execute(QUERY)
    assert par.parallel.registry.exports == exports
    assert par.parallel.pool.respawns >= 1
