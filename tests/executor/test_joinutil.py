"""Equi-join matching: dense and sorted paths vs brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.executor import equi_join_indices
from repro.executor.joinutil import _dense_join, _sorted_join


def brute(left, right):
    return sorted(
        (i, j)
        for i, lv in enumerate(left)
        for j, rv in enumerate(right)
        if lv == rv
    )


def as_pairs(li, ri):
    return sorted(zip(li.tolist(), ri.tolist()))


def test_basic_duplicates():
    left = np.array([3, 1, 2, 2, 9])
    right = np.array([2, 2, 3, 5])
    li, ri = equi_join_indices(left, right)
    assert as_pairs(li, ri) == brute(left, right)


def test_empty_sides():
    empty = np.array([], dtype=np.int64)
    li, ri = equi_join_indices(empty, np.array([1, 2]))
    assert len(li) == 0
    li, ri = equi_join_indices(np.array([1, 2]), empty)
    assert len(ri) == 0


def test_no_matches():
    li, ri = equi_join_indices(np.array([1, 2]), np.array([3, 4]))
    assert len(li) == 0 and len(ri) == 0


def test_float_keys_use_sorted_path():
    left = np.array([1.5, 2.5, 1.5])
    right = np.array([1.5, 3.5])
    li, ri = equi_join_indices(left, right)
    assert as_pairs(li, ri) == brute(left, right)


def test_sparse_int_keys_use_sorted_path():
    left = np.array([10**15, 5])
    right = np.array([10**15, 10**15])
    li, ri = equi_join_indices(left, right)
    assert as_pairs(li, ri) == brute(left, right)


def test_negative_keys():
    left = np.array([-5, -1, 0, -5])
    right = np.array([-5, 0])
    li, ri = equi_join_indices(left, right)
    assert as_pairs(li, ri) == brute(left, right)


def test_dense_and_sorted_agree():
    rng = np.random.default_rng(0)
    left = rng.integers(0, 50, 300)
    right = rng.integers(0, 50, 200)
    dense = as_pairs(*_dense_join(left, right, int(right.min()),
                                  int(right.max() - right.min() + 1)))
    sorted_ = as_pairs(*_sorted_join(left, right))
    assert dense == sorted_


@settings(max_examples=80, deadline=None)
@given(
    st.lists(st.integers(min_value=-30, max_value=30), max_size=40),
    st.lists(st.integers(min_value=-30, max_value=30), max_size=40),
)
def test_matches_brute_force(left_list, right_list):
    left = np.asarray(left_list, dtype=np.int64)
    right = np.asarray(right_list, dtype=np.int64)
    li, ri = equi_join_indices(left, right)
    assert as_pairs(li, ri) == brute(left_list, right_list)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False), max_size=30
    ),
    st.lists(
        st.floats(min_value=-10, max_value=10, allow_nan=False), max_size=30
    ),
)
def test_float_matches_brute_force(left_list, right_list):
    left = np.asarray(left_list)
    right = np.asarray(right_list)
    li, ri = equi_join_indices(left, right)
    assert as_pairs(li, ri) == brute(left_list, right_list)
