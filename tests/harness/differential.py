"""Differential execution harness.

Runs one seeded workload through several engine configurations —
``sequential`` (single session, no parallelism), ``threaded`` (concurrent
client sessions over ``execute_many``) and ``process`` (the
process-parallel scan pool) — and asserts they are observationally
identical: per-statement result sets, final table contents, accounting
counters and (where scheduling permits) full statistics snapshots.

The comparisons are canonical-form string/hashes, so tests print small
readable diffs instead of dumping row sets.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine import Engine, EngineConfig

#: The three execution modes the harness differentiates.
MODES = ("sequential", "threaded", "process")


# ----------------------------------------------------------------------
# Engine factories
# ----------------------------------------------------------------------
def engine_for_mode(
    mode: str,
    build_db: Callable[[], object],
    base_config: Callable[[], EngineConfig],
    scan_workers: int = 4,
    parallel_threshold_rows: int = 64,
) -> Engine:
    """A fresh engine for one mode over a freshly built (seeded) database.

    ``build_db`` must return an identical database every call (same seed);
    ``base_config`` a fresh config every call. The process mode lowers the
    parallel threshold so mini-scale test tables actually shard.
    """
    if mode not in MODES:
        raise ValueError(f"unknown differential mode {mode!r}")
    config = base_config()
    if mode == "process":
        config.scan_workers = scan_workers
        config.parallel_threshold_rows = parallel_threshold_rows
    return Engine(build_db(), config)


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------
def canonical_result(result) -> str:
    """Order-independent canonical form of one statement's outcome."""
    if result.rows is not None:
        return repr(sorted(repr(row) for row in result.rows))
    return f"{result.statement_type}:{result.affected_rows}"


def table_state(engine: Engine) -> Dict[str, tuple]:
    """Per-table (row_count, udi_total, content-hash of the sorted rows)."""
    state = {}
    for name in sorted(engine.database.table_names()):
        table = engine.database.table(name)
        rows = table.fetch_rows(None, table.schema.column_names())
        digest = hashlib.sha256(
            "\n".join(sorted(repr(r) for r in rows)).encode()
        ).hexdigest()
        state[name] = (table.row_count, table.udi_total, digest)
    return state


def stats_fingerprint(engine: Engine, full: bool = False) -> Dict[str, object]:
    """A comparable slice of ``stats_snapshot()``.

    The default slice is deterministic across *all* modes (threaded
    scheduling permutes shared-rng draw order, so sampling-derived stores
    diverge there). ``full=True`` adds the JITS store sizes — valid when
    both engines executed the workload in the same statement order
    (sequential vs process).
    """
    snap = engine.stats_snapshot()
    fp: Dict[str, object] = {
        "statements_executed": snap["engine"]["statements_executed"],
        "clock": snap["engine"]["clock"],
        "tables": snap["tables"],
    }
    if full:
        jits = dict(snap["jits"])
        jits.pop("deferred_recalibrations", None)  # batching, not content
        fp["jits"] = jits
    return fp


# ----------------------------------------------------------------------
# Workload execution
# ----------------------------------------------------------------------
def _is_select(sql: str) -> bool:
    return sql.lstrip().upper().startswith("SELECT")


def run_workload(
    engine: Engine, statements: Sequence[str], mode: str, workers: int = 4
) -> List[str]:
    """Execute the workload in mode-appropriate fashion; canonical results
    are returned in statement order regardless of scheduling.

    ``threaded`` batches *consecutive SELECT runs* through concurrent
    sessions and serializes DML between batches — the concurrency
    contract the engine guarantees result-set equality for.
    """
    out: List[Optional[str]] = [None] * len(statements)
    if mode == "threaded":
        i = 0
        while i < len(statements):
            if _is_select(statements[i]):
                j = i
                while j < len(statements) and _is_select(statements[j]):
                    j += 1
                batch = list(statements[i:j])
                results = engine.execute_many(batch, workers=workers)
                for k, result in enumerate(results):
                    out[i + k] = canonical_result(result)
                i = j
            else:
                out[i] = canonical_result(engine.execute(statements[i]))
                i += 1
    else:
        for i, sql in enumerate(statements):
            out[i] = canonical_result(engine.execute(sql))
    return out  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Assertions
# ----------------------------------------------------------------------
def assert_same_final_state(a: Engine, b: Engine) -> None:
    """Byte-identical final table contents plus accounting counters."""
    assert table_state(a) == table_state(b)
    assert a.clock == b.clock
    assert a.statements_executed == b.statements_executed


def run_differential(
    statements: Sequence[str],
    build_db: Callable[[], object],
    base_config: Callable[[], EngineConfig],
    modes: Sequence[str] = MODES,
    workers: int = 4,
    scan_workers: int = 4,
    parallel_threshold_rows: int = 64,
) -> Dict[str, Engine]:
    """Run the workload through every mode and assert equivalence.

    Per-statement result sets and final table state must agree across all
    modes; full statistics fingerprints must agree between the two
    statement-ordered modes (sequential vs process). Returns the engines
    (still open) so callers can make further assertions; callers own
    ``shutdown()``.
    """
    engines: Dict[str, Engine] = {}
    results: Dict[str, List[str]] = {}
    try:
        for mode in modes:
            engine = engine_for_mode(
                mode,
                build_db,
                base_config,
                scan_workers=scan_workers,
                parallel_threshold_rows=parallel_threshold_rows,
            )
            engines[mode] = engine
            results[mode] = run_workload(
                engine, statements, mode, workers=workers
            )
    except BaseException:
        for engine in engines.values():
            engine.shutdown()
        raise

    baseline = modes[0]
    for mode in modes[1:]:
        for i, sql in enumerate(statements):
            assert results[mode][i] == results[baseline][i], (
                f"{mode} vs {baseline} diverged on statement {i}: {sql}"
            )
        assert_same_final_state(engines[mode], engines[baseline])
    if "sequential" in engines and "process" in engines:
        assert stats_fingerprint(
            engines["process"], full=True
        ) == stats_fingerprint(engines["sequential"], full=True)
    return engines
