"""Differential execution harness.

Runs one seeded workload through several engine configurations —
``sequential`` (single session, no parallelism), ``threaded`` (concurrent
client sessions over ``execute_many``) and ``process`` (the
process-parallel scan pool) — and asserts they are observationally
identical: per-statement result sets, final table contents, accounting
counters and (where scheduling permits) full statistics snapshots.

The comparisons are canonical-form string/hashes, so tests print small
readable diffs instead of dumping row sets.
"""

from __future__ import annotations

import hashlib
import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine import Engine, EngineConfig

#: The three execution modes the harness differentiates.
MODES = ("sequential", "threaded", "process")


# ----------------------------------------------------------------------
# Engine factories
# ----------------------------------------------------------------------
def engine_for_mode(
    mode: str,
    build_db: Callable[[], object],
    base_config: Callable[[], EngineConfig],
    scan_workers: int = 4,
    parallel_threshold_rows: int = 64,
) -> Engine:
    """A fresh engine for one mode over a freshly built (seeded) database.

    ``build_db`` must return an identical database every call (same seed);
    ``base_config`` a fresh config every call. The process mode lowers the
    parallel threshold so mini-scale test tables actually shard.
    """
    if mode not in MODES:
        raise ValueError(f"unknown differential mode {mode!r}")
    config = base_config()
    if mode == "process":
        config.scan_workers = scan_workers
        config.parallel_threshold_rows = parallel_threshold_rows
    return Engine(build_db(), config)


# ----------------------------------------------------------------------
# Canonical forms
# ----------------------------------------------------------------------
def canonical_result(result) -> str:
    """Order-independent canonical form of one statement's outcome."""
    if result.rows is not None:
        return repr(sorted(repr(row) for row in result.rows))
    return f"{result.statement_type}:{result.affected_rows}"


def table_state(engine: Engine) -> Dict[str, tuple]:
    """Per-table (row_count, udi_total, content-hash of the sorted rows)."""
    state = {}
    for name in sorted(engine.database.table_names()):
        table = engine.database.table(name)
        rows = table.fetch_rows(None, table.schema.column_names())
        digest = hashlib.sha256(
            "\n".join(sorted(repr(r) for r in rows)).encode()
        ).hexdigest()
        state[name] = (table.row_count, table.udi_total, digest)
    return state


def stats_fingerprint(engine: Engine, full: bool = False) -> Dict[str, object]:
    """A comparable slice of ``stats_snapshot()``.

    The default slice is deterministic across *all* modes (threaded
    scheduling permutes shared-rng draw order, so sampling-derived stores
    diverge there). ``full=True`` adds the JITS store sizes — valid when
    both engines executed the workload in the same statement order
    (sequential vs process).
    """
    snap = engine.stats_snapshot()
    fp: Dict[str, object] = {
        "statements_executed": snap["engine"]["statements_executed"],
        "clock": snap["engine"]["clock"],
        "tables": snap["tables"],
    }
    if full:
        jits = dict(snap["jits"])
        jits.pop("deferred_recalibrations", None)  # batching, not content
        fp["jits"] = jits
    return fp


# ----------------------------------------------------------------------
# Workload execution
# ----------------------------------------------------------------------
def _is_select(sql: str) -> bool:
    return sql.lstrip().upper().startswith("SELECT")


def run_workload(
    engine: Engine, statements: Sequence[str], mode: str, workers: int = 4
) -> List[str]:
    """Execute the workload in mode-appropriate fashion; canonical results
    are returned in statement order regardless of scheduling.

    ``threaded`` batches *consecutive SELECT runs* through concurrent
    sessions and serializes DML between batches — the concurrency
    contract the engine guarantees result-set equality for.
    """
    out: List[Optional[str]] = [None] * len(statements)
    if mode == "threaded":
        i = 0
        while i < len(statements):
            if _is_select(statements[i]):
                j = i
                while j < len(statements) and _is_select(statements[j]):
                    j += 1
                batch = list(statements[i:j])
                results = engine.execute_many(batch, workers=workers)
                for k, result in enumerate(results):
                    out[i + k] = canonical_result(result)
                i = j
            else:
                out[i] = canonical_result(engine.execute(statements[i]))
                i += 1
    else:
        for i, sql in enumerate(statements):
            out[i] = canonical_result(engine.execute(sql))
    return out  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Assertions
# ----------------------------------------------------------------------
def assert_same_final_state(a: Engine, b: Engine) -> None:
    """Byte-identical final table contents plus accounting counters."""
    assert table_state(a) == table_state(b)
    assert a.clock == b.clock
    assert a.statements_executed == b.statements_executed


def run_differential(
    statements: Sequence[str],
    build_db: Callable[[], object],
    base_config: Callable[[], EngineConfig],
    modes: Sequence[str] = MODES,
    workers: int = 4,
    scan_workers: int = 4,
    parallel_threshold_rows: int = 64,
) -> Dict[str, Engine]:
    """Run the workload through every mode and assert equivalence.

    Per-statement result sets and final table state must agree across all
    modes; full statistics fingerprints must agree between the two
    statement-ordered modes (sequential vs process). Returns the engines
    (still open) so callers can make further assertions; callers own
    ``shutdown()``.
    """
    engines: Dict[str, Engine] = {}
    results: Dict[str, List[str]] = {}
    try:
        for mode in modes:
            engine = engine_for_mode(
                mode,
                build_db,
                base_config,
                scan_workers=scan_workers,
                parallel_threshold_rows=parallel_threshold_rows,
            )
            engines[mode] = engine
            results[mode] = run_workload(
                engine, statements, mode, workers=workers
            )
    except BaseException:
        for engine in engines.values():
            engine.shutdown()
        raise

    baseline = modes[0]
    for mode in modes[1:]:
        for i, sql in enumerate(statements):
            assert results[mode][i] == results[baseline][i], (
                f"{mode} vs {baseline} diverged on statement {i}: {sql}"
            )
        assert_same_final_state(engines[mode], engines[baseline])
    if "sequential" in engines and "process" in engines:
        assert stats_fingerprint(
            engines["process"], full=True
        ) == stats_fingerprint(engines["sequential"], full=True)
    return engines


# ----------------------------------------------------------------------
# Snapshot-isolation torture schedules
# ----------------------------------------------------------------------
@dataclass
class TortureReport:
    """What one torture schedule executed and proved.

    Every reader result was validated against a sequential replay of the
    writer DML at the reader's pinned per-table snapshot stamps.
    """

    dml_executed: int = 0
    reads_validated: int = 0
    runstats_passes: int = 0
    generations: Dict[str, int] = field(default_factory=dict)


def _table_content(table) -> List[tuple]:
    return table.fetch_rows(None, table.schema.column_names())


def _scratch_database(schemas, contents: Dict[str, List[tuple]]):
    """A throwaway Database loaded with per-table recorded contents."""
    from repro.storage import Database

    db = Database("torture-check")
    for schema in schemas:
        table = db.create_table(schema)
        names = schema.column_names()
        rows = contents[schema.name.lower()]
        if rows:
            table.insert_rows([dict(zip(names, row)) for row in rows])
    return db


def run_torture_schedule(
    build_db: Callable[[], object],
    base_config: Callable[[], EngineConfig],
    writer_streams: Sequence[Sequence[str]],
    reader_pool: Sequence[str],
    seed: int,
    n_readers: int = 3,
    reads_per_reader: int = 8,
    runstats_every: int = 0,
) -> TortureReport:
    """Run one randomized concurrent reader/writer schedule and check
    snapshot isolation end to end.

    Writers (one thread per stream) execute single-table DML through
    their own sessions while ``n_readers`` reader threads execute SELECTs
    drawn (seeded) from ``reader_pool`` — plus, optionally, whole-engine
    RUNSTATS passes. The engine must be configured with ``mvcc=True``.

    Validation replays every DML statement **sequentially** on a fresh
    identical database in publish-stamp order (per-table stamp order is
    the serialization order the per-table write locks enforced), records
    each table's content at every published stamp, and then re-evaluates
    every reader's statement against the recorded contents at the
    reader's pinned ``(table -> stamp)`` view via the reference executor.
    Every reader result must match exactly; per-statement affected-row
    counts and the final table contents must match the replay too.
    """
    from repro.executor import run_reference
    from repro.sql import build_query_graph, parse_select

    engine = Engine(build_db(), base_config())
    assert engine.config.mvcc, "torture schedules require mvcc=True"
    writes: List[List[Tuple[str, int, Dict[str, Tuple[int, int]]]]] = [
        [] for _ in writer_streams
    ]
    reads: List[List[Tuple[str, List[tuple], Dict[str, Tuple[int, int]]]]] = [
        [] for _ in range(n_readers)
    ]
    runstats_done = [0]
    dml_done = [0]
    errors: List[BaseException] = []
    start = threading.Barrier(len(writer_streams) + n_readers)

    def writer(index: int, stream: Sequence[str]) -> None:
        try:
            session = engine.session()
            start.wait()
            for sql in stream:
                result = session.execute(sql)
                dml_done[0] += 1
                if not result.snapshots:
                    # A statement that matched nothing mutates nothing and
                    # publishes nothing — it has no place on the replay
                    # timeline.
                    assert result.affected_rows == 0, sql
                    continue
                writes[index].append(
                    (sql, result.affected_rows, dict(result.snapshots))
                )
        except BaseException as exc:  # noqa: BLE001 - surfaced in the test
            errors.append(exc)

    def reader(index: int) -> None:
        try:
            rng = random.Random((seed << 8) ^ (index * 7919))
            session = engine.session()
            start.wait()
            for i in range(reads_per_reader):
                if runstats_every and i % runstats_every == runstats_every - 1:
                    # RUNSTATS is a snapshot reader under MVCC: it must
                    # complete while writers hold table write locks.
                    engine.collect_general_statistics()
                    runstats_done[0] += 1
                    continue
                sql = rng.choice(list(reader_pool))
                result = session.execute(sql)
                assert result.snapshots is not None, sql
                reads[index].append(
                    (sql, result.rows, dict(result.snapshots))
                )
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(i, stream))
        for i, stream in enumerate(writer_streams)
    ] + [threading.Thread(target=reader, args=(i,)) for i in range(n_readers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=180)
    try:
        assert not any(t.is_alive() for t in threads), "torture schedule hung"
        if errors:
            raise errors[0]

        # -- sequential replay in publish-stamp order -------------------
        replay = Engine(build_db(), base_config())
        try:
            schemas = [
                replay.database.table(n).schema
                for n in sorted(replay.database.table_names())
            ]
            content: Dict[str, Dict[int, List[tuple]]] = {}
            for schema in schemas:
                key = schema.name.lower()
                table = replay.database.table(key)
                content[key] = {table.snapshot_stamp: _table_content(table)}

            timeline: List[Tuple[int, str, str, int]] = []
            for stream in writes:
                for sql, affected, snapshots in stream:
                    assert len(snapshots) == 1, (
                        "torture writers must target one table per "
                        f"statement: {sql}"
                    )
                    ((name, (_epoch, stamp)),) = snapshots.items()
                    timeline.append((stamp, name, sql, affected))
            timeline.sort(key=lambda entry: entry[0])
            stamps = [entry[0] for entry in timeline]
            assert len(set(stamps)) == len(stamps), "publish stamps collided"

            report = TortureReport(dml_executed=dml_done[0],
                                   runstats_passes=runstats_done[0])
            for stamp, name, sql, affected in timeline:
                replayed = replay.execute(sql)
                assert replayed.affected_rows == affected, (
                    f"replay diverged on {sql!r}: "
                    f"{replayed.affected_rows} != {affected}"
                )
                content[name][stamp] = _table_content(
                    replay.database.table(name)
                )
            for key, by_stamp in content.items():
                report.generations[key] = len(by_stamp)

            # Final live contents must agree (same per-table DML order).
            for schema in schemas:
                key = schema.name.lower()
                assert _table_content(engine.database.table(key)) == (
                    _table_content(replay.database.table(key))
                ), f"final content diverged for table {key!r}"

            # -- validate every reader at its pinned stamps -------------
            expected_cache: Dict[Tuple, List[tuple]] = {}
            for per_reader in reads:
                for sql, rows, pinned in per_reader:
                    view_key = (sql, tuple(sorted(
                        (name, stamp)
                        for name, (_e, stamp) in pinned.items()
                    )))
                    expected = expected_cache.get(view_key)
                    if expected is None:
                        contents: Dict[str, List[tuple]] = {}
                        for name, (_epoch, stamp) in pinned.items():
                            assert stamp in content[name], (
                                f"reader pinned unknown stamp {stamp} "
                                f"for table {name!r}"
                            )
                            contents[name] = content[name][stamp]
                        scratch = _scratch_database(
                            [
                                s for s in schemas
                                if s.name.lower() in contents
                            ],
                            contents,
                        )
                        block = build_query_graph(
                            parse_select(sql), scratch
                        )
                        expected = sorted(run_reference(block, scratch))
                        expected_cache[view_key] = expected
                    assert sorted(rows) == expected, (
                        f"reader diverged from its pinned view on {sql!r} "
                        f"at {pinned}"
                    )
                    report.reads_validated += 1
            return report
        finally:
            replay.shutdown()
    finally:
        engine.shutdown()
