"""Shared test harnesses (differential execution, state fingerprints)."""
