"""True cancellation: interrupting a statement that is already running.

The queued-cancel path is covered in test_server.py; these tests pin the
harder guarantee — a ``cancel`` frame interrupts an *executing*
statement at the next morsel/checkpoint boundary, the reply is a typed
``CANCELLED`` error, the interruption is prompt (a fraction of the
statement's remaining modeled work), and the session stays usable.

The modeled scan cost (``scan_cost_per_row``) is only paid once the
parallel scan manager engages, i.e. when the scanned row count reaches
``parallel_threshold_rows`` — the fixtures lower that threshold so a
mini table's scan carries seconds of interruptible work.
"""

import time

import pytest

from repro import Engine, EngineConfig
from repro.errors import StatementCancelledError
from repro.server import ReproServer, connect
from tests.conftest import build_mini_db

SQL = "SELECT COUNT(*) FROM car WHERE price >= 0"

# 20k rows x 0.2 ms/row = ~4 s of modeled, GIL-releasing scan work,
# sliced into ~5 ms cancellable sleeps.
N_CARS = 20_000
SCAN_COST = 2e-4


def make_engine() -> Engine:
    db = build_mini_db(n_owners=50, n_cars=N_CARS, seed=5)
    config = EngineConfig(
        scan_cost_per_row=SCAN_COST,
        parallel_threshold_rows=100,
    )
    return Engine(db, config)


@pytest.fixture
def server():
    srv = ReproServer(make_engine(), port=0).start_in_thread()
    yield srv
    srv.stop_from_thread()


def test_cancel_interrupts_running_statement(server):
    with connect(port=server.port) as client:
        rid = client.next_id()
        client.send_raw({"type": "query", "id": rid, "sql": SQL})
        time.sleep(0.3)  # let it get admitted and start scanning
        started = time.perf_counter()
        assert client.cancel(rid) is True
        reply = client._out_of_order.pop(rid, None)
        if reply is None:
            reply = client.recv_raw()
        elapsed = time.perf_counter() - started
        assert reply["type"] == "error"
        assert reply["code"] == "CANCELLED"
        assert reply["id"] == rid
        # Far sooner than the ~4 s the scan had left: the token is
        # polled every morsel / modeled-sleep slice (~5 ms).
        assert elapsed < 1.0, f"cancel took {elapsed:.2f}s"
        # The session is immediately reusable on the same connection.
        result = client.execute("SELECT COUNT(*) FROM owner")
        assert result.rows == [(50,)]


def test_cancelled_error_surfaces_typed(server):
    with connect(port=server.port) as client:
        rid = client.next_id()
        client.send_raw({"type": "query", "id": rid, "sql": SQL})
        time.sleep(0.3)
        assert client.cancel(rid) is True
        reply = client._out_of_order.pop(rid, None)
        if reply is None:
            reply = client.recv_raw()
        with pytest.raises(StatementCancelledError):
            client._unwrap(reply, "result")


def test_cancel_after_completion_is_a_noop(server):
    with connect(port=server.port) as client:
        result = client.execute("SELECT COUNT(*) FROM owner")
        assert result.rows == [(50,)]
        # The statement finished; its token is gone. Racing a cancel
        # against the completed request must not invent an error.
        assert client.cancel(client.last_request_id) is False
        assert client.execute("SELECT COUNT(*) FROM owner").rows == [(50,)]


def test_disconnect_cancels_running_statement(server):
    victim = connect(port=server.port)
    rid = victim.next_id()
    victim.send_raw({"type": "query", "id": rid, "sql": SQL})
    time.sleep(0.3)
    victim.close()  # abrupt: the ~4 s scan must not run to completion
    started = time.perf_counter()
    with connect(port=server.port) as probe:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if probe.stats()["server"]["connections"] == 1:
                break
            time.sleep(0.05)
        stats = probe.stats()
        assert stats["server"]["connections"] == 1
    # Generous bound, still far below the statement's remaining work.
    assert time.perf_counter() - started < 3.0
