"""Multi-process acceptor fleet: forking, shared port, coordination.

The ``AcceptorGroup`` tests fork real processes and serve real sockets,
so they are guarded on ``SO_REUSEPORT`` (Linux/BSD); the coordination
block is plain shared memory and is tested everywhere.
"""

import os
import signal
import socket
import time

import pytest

from repro import ConfigError, Engine, EngineConfig
from repro.server import AcceptorCoordination, AcceptorGroup, connect
from tests.conftest import build_mini_db

needs_reuseport = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available on this platform",
)


# ----------------------------------------------------------------------
# Coordination block (no processes)
# ----------------------------------------------------------------------
def test_coordination_counters_and_drain():
    coordination = AcceptorCoordination(3)
    view0, view2 = coordination.view(0), coordination.view(2)
    assert coordination.snapshot() == {
        "draining": False,
        "inflight": 0,
        "ready": 0,
        "served": [0, 0, 0],
        "total_served": 0,
    }
    view0.mark_ready()
    view0.statement_started()
    view2.statement_started()
    assert coordination.inflight == 2
    assert coordination.ready == 1
    view0.statement_finished()
    view2.statement_finished()
    view2.statement_started()  # a second statement on acceptor 2
    view2.statement_finished()
    snapshot = coordination.snapshot()
    assert snapshot["served"] == [1, 0, 2]
    assert snapshot["total_served"] == 3
    assert snapshot["inflight"] == 0
    assert not view0.draining
    coordination.start_drain()
    assert coordination.draining
    assert view0.draining and view2.draining


def test_acceptor_count_validated():
    with pytest.raises(ConfigError):
        AcceptorGroup(lambda: None, n_acceptors=0)


# ----------------------------------------------------------------------
# Forked fleet end-to-end
# ----------------------------------------------------------------------
def make_factory():
    # Storage is built once (in the parent, shared copy-on-write); each
    # child wraps it in its own engine after the fork.
    db = build_mini_db(n_owners=80, n_cars=240, seed=9)
    return lambda: Engine(db, EngineConfig())


@needs_reuseport
def test_fleet_serves_on_one_port_and_drains():
    group = AcceptorGroup(
        make_factory(), n_acceptors=2, port=0, stream_threshold_rows=100
    ).start()
    try:
        assert group.port > 0
        assert group.alive() == 2
        assert group.coordination.ready == 2
        # Several connections; the kernel spreads them over the fleet.
        for _ in range(3):
            with connect(port=group.port) as client:
                assert client.execute(
                    "SELECT COUNT(*) FROM car"
                ).rows == [(240,)]
                result = client.execute(
                    "SELECT id, make FROM car ORDER BY id"
                )
                assert result.row_count == 240
                assert result.streamed is True  # v2 streams over the fleet
        snapshot = group.snapshot()
        assert snapshot["total_served"] == 6
        assert snapshot["inflight"] == 0
    finally:
        group.stop()
    assert group.alive() == 0
    assert group.pids == []
    # The port is actually free again.
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind(("127.0.0.1", group.port))
    finally:
        probe.close()


@needs_reuseport
def test_fleet_context_manager_and_single_acceptor():
    with AcceptorGroup(make_factory(), n_acceptors=1, port=0) as group:
        with connect(port=group.port) as client:
            assert client.execute("SELECT COUNT(*) FROM owner").rows == [
                (80,)
            ]
    assert group.alive() == 0


@needs_reuseport
def test_stop_reaps_a_wedged_child():
    group = AcceptorGroup(make_factory(), n_acceptors=2, port=0).start()
    # Simulate a child that never honours SIGTERM.
    os.kill(group.pids[0], signal.SIGSTOP)
    started = time.monotonic()
    group.stop(timeout=1.0)
    assert group.alive() == 0  # escalated to SIGKILL
    assert time.monotonic() - started < 10.0


@needs_reuseport
def test_draining_fleet_rejects_new_connections():
    group = AcceptorGroup(make_factory(), n_acceptors=2, port=0).start()
    try:
        group.coordination.start_drain()
        time.sleep(0.05)
        with pytest.raises(Exception):
            with connect(port=group.port, connect_retries=2) as client:
                client.execute("SELECT COUNT(*) FROM car")
    finally:
        group.stop()
