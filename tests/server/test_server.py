"""Functional tests for the asyncio server and blocking client."""

import socket
import struct
import time

import pytest

from repro import (
    BindingError,
    ConfigError,
    Engine,
    EngineConfig,
    ReproError,
    SqlSyntaxError,
)
from repro.server import (
    CancelledStatementError,
    Client,
    ProtocolError,
    ReproServer,
    ServerBusyError,
    connect,
    encode_frame,
    read_frame_blocking,
)
from tests.conftest import build_mini_db


def make_engine(seed: int = 3) -> Engine:
    db = build_mini_db(n_owners=60, n_cars=180, seed=seed)
    return Engine(
        db, EngineConfig.with_jits(s_max=0.3, sample_size=100)
    )


@pytest.fixture
def server():
    srv = ReproServer(
        make_engine(), port=0, max_inflight=4, per_client_inflight=2
    ).start_in_thread()
    yield srv
    srv.stop_from_thread()


def test_server_config_validation():
    engine = make_engine()
    with pytest.raises(ConfigError):
        ReproServer(engine, max_inflight=0)
    with pytest.raises(ConfigError):
        ReproServer(engine, per_client_inflight=0)
    with pytest.raises(ConfigError):
        ReproServer(engine, workers=0)


def test_query_explain_stats_ping(server):
    with connect(port=server.port) as client:
        result = client.execute("SELECT COUNT(*) FROM car")
        assert result.statement_type == "select"
        assert result.rows == [(180,)]
        assert result.row_count == 1
        assert set(result.timings) == {"compile", "execute", "fetch"}
        assert result.total_time > 0.0

        plan = client.explain("SELECT id FROM car WHERE make = 'Toyota'")
        assert "Scan" in plan or "Project" in plan

        stats = client.stats()
        assert stats["engine"]["statements_executed"] >= 1
        assert stats["server"]["connections"] == 1
        assert stats["server"]["per_client_inflight"] == 2
        assert "car" in stats["tables"]

        assert client.ping() >= 0.0


def test_query_results_match_in_process_engine(server):
    sql = "SELECT id, make, price FROM car WHERE year >= 2000 ORDER BY id"
    reference = make_engine()
    with connect(port=server.port) as client:
        remote = client.execute(sql)
    local = reference.execute(sql)
    assert remote.columns == local.columns
    assert remote.rows == local.rows  # byte-identical, ORDER BY total


def test_dml_over_the_wire(server):
    with connect(port=server.port) as client:
        before = client.execute("SELECT COUNT(*) FROM car").rows[0][0]
        deleted = client.execute("DELETE FROM car WHERE price < 5000")
        assert deleted.statement_type == "delete"
        after = client.execute("SELECT COUNT(*) FROM car").rows[0][0]
        assert after == before - deleted.affected_rows


def test_error_frames_surface_typed_exceptions(server):
    with connect(port=server.port) as client:
        with pytest.raises(SqlSyntaxError) as excinfo:
            client.execute("SELECT FROM WHERE")
        assert excinfo.value.position >= 0
        with pytest.raises(BindingError):
            client.execute("SELECT nosuchcolumn FROM car")
        with pytest.raises(ReproError):
            client.explain("DELETE FROM car WHERE price < 1")
        # The connection stays usable after every error.
        assert client.execute("SELECT COUNT(*) FROM owner").rows == [(60,)]


def test_unknown_frame_type_is_protocol_error(server):
    with connect(port=server.port) as client:
        client.send_raw({"type": "frobnicate", "id": 1})
        reply = client.recv_raw()
        assert reply["type"] == "error"
        assert reply["code"] == "PROTOCOL"


def test_handshake_version_mismatch_rejected(server):
    with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
        sock.sendall(encode_frame({"type": "hello", "version": 999}))
        stream = sock.makefile("rb")
        reply = read_frame_blocking(stream)
        assert reply["type"] == "error"
        assert reply["code"] == "PROTOCOL"
        assert "version" in reply["message"]
        # Server closes the connection after rejecting the handshake.
        assert stream.read(1) == b""


def test_garbage_bytes_do_not_wedge_the_server(server):
    with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
        sock.sendall(struct.pack(">I", 8) + b"notjson!")
    # A well-formed client still gets served afterwards.
    with connect(port=server.port) as client:
        assert client.execute("SELECT COUNT(*) FROM car").row_count == 1


def test_flooding_client_gets_busy_frames(server):
    with connect(port=server.port) as client:
        ids = []
        for _ in range(8):
            rid = client.next_id()
            ids.append(rid)
            client.send_raw(
                {
                    "type": "query",
                    "id": rid,
                    "sql": "SELECT COUNT(*) FROM car",
                }
            )
        replies = {}
        for _ in ids:
            frame = client.recv_raw()
            replies[frame["id"]] = frame
        assert set(replies) == set(ids)
        kinds = [replies[rid]["type"] for rid in ids]
        assert kinds.count("busy") >= 1  # cap is 2; 8 were pipelined
        assert kinds.count("result") >= 2
        busy = next(f for f in replies.values() if f["type"] == "busy")
        assert busy["retryable"] is True
        assert busy["cap"] == 2


def test_busy_raises_and_retries(server):
    with connect(port=server.port) as client:
        # Fill the admission cap with pipelined raw frames...
        for _ in range(4):
            client.send_raw(
                {
                    "type": "query",
                    "id": client.next_id(),
                    "sql": "SELECT COUNT(*) FROM accidents",
                }
            )
        # ...then the high-level call sees BUSY without retries...
        with pytest.raises(ServerBusyError):
            client.execute("SELECT COUNT(*) FROM car", busy_retries=0)
        # ...and succeeds with bounded retries once the queue drains.
        result = client.execute(
            "SELECT COUNT(*) FROM car", busy_retries=8, busy_backoff=0.05
        )
        assert result.rows == [(180,)]


def test_cancel_dequeues_pending_statement():
    engine = make_engine()
    server = ReproServer(
        engine, port=0, max_inflight=1, per_client_inflight=1
    ).start_in_thread()
    try:
        blocker = connect(port=server.port)
        victim = connect(port=server.port)
        # Hold the database write lock so the blocker's statement occupies
        # the single global slot, guaranteeing the victim's stays queued.
        engine.rwlock.acquire_write()
        try:
            blocker.send_raw(
                {
                    "type": "query",
                    "id": blocker.next_id(),
                    "sql": "DELETE FROM car WHERE price < 100",
                }
            )
            time.sleep(0.2)  # let the blocker's statement get admitted
            target = victim.next_id()
            victim.send_raw(
                {
                    "type": "query",
                    "id": target,
                    "sql": "SELECT COUNT(*) FROM car",
                }
            )
            time.sleep(0.2)  # let it reach the victim's queue
            assert victim.cancel(target) is True
            with pytest.raises(CancelledStatementError):
                victim._unwrap(victim._out_of_order.pop(target), "result")
            # Cancelling an unknown id reports cancelled=False.
            assert victim.cancel(99999) is False
        finally:
            engine.rwlock.release_write()
        blocker.recv_raw()  # the unblocked DELETE's result
        blocker.close()
        victim.close()
    finally:
        server.stop_from_thread()


def test_two_clients_have_independent_sessions(server):
    with connect(port=server.port) as a, connect(port=server.port) as b:
        ra = a.execute("SELECT COUNT(*) FROM car")
        rb = b.execute("SELECT COUNT(*) FROM car")
        assert ra.rows == rb.rows
        stats = a.stats()
        assert stats["server"]["connections"] == 2


def test_connect_retries_then_fails_fast():
    with pytest.raises(ProtocolError, match="could not connect"):
        Client(
            port=1,  # nothing listens on port 1
            connect_retries=2,
            retry_delay=0.01,
            timeout=0.2,
        )


def test_clean_shutdown_closes_clients():
    server = ReproServer(make_engine(), port=0).start_in_thread()
    client = connect(port=server.port)
    assert client.execute("SELECT COUNT(*) FROM car").row_count == 1
    server.stop_from_thread()
    with pytest.raises(ProtocolError):
        for _ in range(10):  # the close may race the next send
            client.execute("SELECT COUNT(*) FROM car")
            time.sleep(0.05)
    client.close()
