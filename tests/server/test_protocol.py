"""Wire-protocol unit tests: framing, handshake constants, error frames."""

import io
import struct

import pytest

from repro.errors import (
    BindingError,
    CatalogError,
    ConfigError,
    ExecutionError,
    ReproError,
    SqlSyntaxError,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    CancelledStatementError,
    ProtocolError,
    decode_payload,
    encode_frame,
    error_code_for,
    error_frame,
    exception_from_frame,
    read_frame_blocking,
)


def roundtrip(frame):
    wire = encode_frame(frame)
    return read_frame_blocking(io.BytesIO(wire))


def test_frame_roundtrip():
    frame = {
        "type": "result",
        "id": 7,
        "rows": [[1, "Toyota", 2.5], [2, "Honda", -1.0]],
        "timings": {"compile": 0.25},
    }
    assert roundtrip(frame) == frame


def test_frame_is_length_prefixed():
    wire = encode_frame({"type": "ping", "id": 1})
    (length,) = struct.unpack(">I", wire[:4])
    assert length == len(wire) - 4


def test_numpy_scalars_serialize():
    np = pytest.importorskip("numpy")
    frame = roundtrip(
        {"type": "result", "id": 1, "rows": [[np.int64(3), np.float64(1.5)]]}
    )
    assert frame["rows"] == [[3, 1.5]]


def test_read_frame_blocking_eof_and_truncation():
    with pytest.raises(ProtocolError, match="closed by server"):
        read_frame_blocking(io.BytesIO(b""))
    with pytest.raises(ProtocolError, match="mid-header"):
        read_frame_blocking(io.BytesIO(b"\x00\x00"))
    wire = encode_frame({"type": "ping", "id": 1})
    with pytest.raises(ProtocolError, match="mid-frame"):
        read_frame_blocking(io.BytesIO(wire[:-2]))


def test_oversized_frames_rejected_both_ways():
    huge = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        read_frame_blocking(io.BytesIO(huge))
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"type": "x", "blob": "a" * (MAX_FRAME_BYTES + 1)})


def test_decode_payload_rejects_non_objects():
    with pytest.raises(ProtocolError):
        decode_payload(b"[1, 2, 3]")
    with pytest.raises(ProtocolError):
        decode_payload(b'{"no_type": 1}')
    with pytest.raises(ProtocolError):
        decode_payload(b"\xff\xfe")


def test_error_codes_distinguish_config_from_runtime():
    assert error_code_for(ConfigError("bad knob")) == "CONFIG"
    assert error_code_for(ExecutionError("boom")) == "RUNTIME"
    assert error_code_for(CatalogError("nope")) == "RUNTIME"
    assert error_code_for(SqlSyntaxError("bad", position=3)) == "SYNTAX"
    assert error_code_for(ProtocolError("junk")) == "PROTOCOL"
    assert error_code_for(ValueError("python")) == "INTERNAL"


def test_error_frame_carries_class_and_position():
    frame = error_frame(9, SqlSyntaxError("unexpected token", position=17))
    assert frame["id"] == 9
    assert frame["code"] == "SYNTAX"
    assert frame["error_class"] == "SqlSyntaxError"
    assert frame["position"] == 17
    rebuilt = exception_from_frame(frame)
    assert isinstance(rebuilt, SqlSyntaxError)
    assert rebuilt.position == 17


def test_exception_from_frame_maps_known_classes():
    for exc in (
        BindingError("b"),
        ConfigError("c"),
        ExecutionError("e"),
        CancelledStatementError("x"),
    ):
        rebuilt = exception_from_frame(error_frame(1, exc))
        assert type(rebuilt) is type(exc)
        assert str(rebuilt) == str(exc)


def test_exception_from_frame_unknown_class_falls_back():
    rebuilt = exception_from_frame(
        {"type": "error", "id": 1, "error_class": "NoSuch", "message": "m"}
    )
    assert type(rebuilt) is ReproError
