"""Protocol v2: binary columnar frames, negotiation, streaming clients.

Covers the frame codec in isolation (round-trips, every truncation and
corruption path), the server's streaming decision, v1/v2 result identity
over a live socket, incremental delivery, the 32 MiB JSON frame cap, and
the edge cases a wire protocol lives or dies by: torn frames, binary
frames in the wrong direction, mid-stream disconnects, oversized
results on the legacy path.
"""

import socket
import struct
import time

import numpy as np
import pytest

from repro import Engine, EngineConfig
from repro.server import (
    FrameTooLargeError,
    ProtocolError,
    ReproServer,
    StreamDecoder,
    build_stream_frames,
    connect,
    encode_binary_frame,
    encode_frame,
    parse_binary_frame,
    read_frame_blocking,
)
from repro.server.frames import (
    DTYPE_DICT32,
    DTYPE_FLOAT64,
    DTYPE_INT64,
    KIND_CHUNK,
    KIND_DICT,
    encode_chunk_frame,
    encode_dict_frame,
    peek_request_id,
)
from repro.server.protocol import PROTOCOL_VERSION_2
from tests.conftest import build_mini_db

SQL = "SELECT id, name, salary, city FROM owner ORDER BY id"


def make_engine(stream_vectors: bool = True) -> Engine:
    db = build_mini_db(n_owners=300, n_cars=60, seed=11)
    config = EngineConfig(stream_vectors=stream_vectors)
    return Engine(db, config)


@pytest.fixture
def server():
    # Low threshold and tiny chunks so a 300-row result streams as
    # several CHUNK frames.
    srv = ReproServer(
        make_engine(), port=0, stream_threshold_rows=64, chunk_rows=100
    ).start_in_thread()
    yield srv
    srv.stop_from_thread()


# ----------------------------------------------------------------------
# Frame codec round-trips
# ----------------------------------------------------------------------
def test_dict_frame_roundtrip():
    entries = ["Ottawa", "", "Waßerloo", "x" * 500]
    kind, rid, (column_index, decoded) = parse_binary_frame(
        encode_dict_frame(42, 3, entries)
    )
    assert (kind, rid, column_index) == (KIND_DICT, 42, 3)
    assert decoded == entries


def test_empty_dict_frame_roundtrip():
    kind, _rid, (column_index, decoded) = parse_binary_frame(
        encode_dict_frame(1, 0, [])
    )
    assert (kind, column_index, decoded) == (KIND_DICT, 0, [])


def test_chunk_frame_roundtrip_all_dtypes():
    ints = np.arange(5, dtype="<i8") * 1000
    floats = np.linspace(-1.5, 2.5, 5)
    codes = np.array([0, 1, 0, 2, 1], dtype="<i4")
    payload = encode_chunk_frame(
        7,
        2,
        [(DTYPE_INT64, ints), (DTYPE_FLOAT64, floats), (DTYPE_DICT32, codes)],
    )
    assert peek_request_id(payload) == 7
    kind, rid, (chunk_index, columns) = parse_binary_frame(payload)
    assert (kind, rid, chunk_index) == (KIND_CHUNK, 7, 2)
    assert [code for code, _ in columns] == [
        DTYPE_INT64,
        DTYPE_FLOAT64,
        DTYPE_DICT32,
    ]
    np.testing.assert_array_equal(columns[0][1], ints)
    np.testing.assert_array_equal(columns[1][1], floats)
    np.testing.assert_array_equal(columns[2][1], codes)


def test_torn_and_corrupt_binary_frames_rejected():
    chunk = encode_chunk_frame(1, 0, [(DTYPE_INT64, np.arange(4))])
    dictionary = encode_dict_frame(1, 0, ["a", "bc"])
    cases = [
        (b"", "shorter than its prefix"),
        (chunk[:5], "shorter than its prefix"),
        (chunk[:12], "truncated CHUNK frame header"),
        (chunk[:25], "truncated CHUNK column header"),
        (chunk[:-3], "truncated CHUNK column buffer"),
        (dictionary[:12], "truncated DICT frame header"),
        (dictionary[:20], "truncated DICT frame offsets"),
        (dictionary[:-1], "truncated DICT frame blob"),
    ]
    for payload, message in cases:
        with pytest.raises(ProtocolError, match=message):
            parse_binary_frame(payload)
    with pytest.raises(ProtocolError, match="shorter than its prefix"):
        peek_request_id(b"\x01")


def test_unknown_kind_and_dtype_rejected():
    prefix = struct.Struct("<Bq").pack(9, 1)
    with pytest.raises(ProtocolError, match="unknown binary frame kind 9"):
        parse_binary_frame(prefix)
    # Patch a chunk's per-column dtype code to an unassigned value.
    chunk = bytearray(encode_chunk_frame(1, 0, [(DTYPE_INT64, np.arange(2))]))
    col_head = struct.Struct("<Bq").size + struct.Struct("<IIH").size
    chunk[col_head] = 77
    with pytest.raises(ProtocolError, match="unknown dtype code 77"):
        parse_binary_frame(bytes(chunk))


def test_buffer_size_mismatch_rejected():
    # Claim 4 rows but ship 3 values' worth of bytes.
    good = encode_chunk_frame(1, 0, [(DTYPE_INT64, np.arange(3))])
    tampered = bytearray(good)
    head = struct.Struct("<Bq")
    struct.Struct("<IIH").pack_into(tampered, head.size, 0, 4, 1)
    with pytest.raises(ProtocolError, match="expected 4 x 8"):
        parse_binary_frame(bytes(tampered))


# ----------------------------------------------------------------------
# build_stream_frames <-> StreamDecoder (no socket)
# ----------------------------------------------------------------------
def test_stream_frames_roundtrip_chunked():
    engine = make_engine()
    result = engine.execute(SQL)
    header, payloads, end = build_stream_frames(5, result, chunk_rows=90)
    assert header["row_count"] == 300
    assert header["n_chunks"] == 4  # ceil(300 / 90)
    assert header["columns"] == list(result.columns)
    decoder = StreamDecoder(header)
    batches = []
    for payload in payloads:
        decoder.feed(payload)
        batches.append(len(decoder.drain_rows()))
    decoder.finish(end)
    assert decoder.complete
    assert decoder.rows == result.rows
    # DICT frames yield no rows; CHUNK frames drain incrementally.
    assert [b for b in batches if b] == [90, 90, 90, 30]


def test_stream_frames_require_vectors():
    engine = make_engine(stream_vectors=False)
    result = engine.execute(SQL)
    assert result.vectors is None
    with pytest.raises(ProtocolError, match="stream_vectors"):
        build_stream_frames(1, result)


def test_decoder_rejects_out_of_order_chunks():
    result = make_engine().execute(SQL)
    header, payloads, _end = build_stream_frames(5, result, chunk_rows=90)
    decoder = StreamDecoder(header)
    dicts = [p for p in payloads if parse_binary_frame(p)[0] == KIND_DICT]
    chunks = [p for p in payloads if parse_binary_frame(p)[0] == KIND_CHUNK]
    for payload in dicts:
        decoder.feed(payload)
    with pytest.raises(ProtocolError, match="out of order"):
        decoder.feed(chunks[1])


def test_decoder_rejects_chunk_before_its_dictionary():
    result = make_engine().execute(SQL)
    _header, payloads, _end = build_stream_frames(5, result, chunk_rows=90)
    decoder = StreamDecoder(_header)
    chunk = next(
        p for p in payloads if parse_binary_frame(p)[0] == KIND_CHUNK
    )
    with pytest.raises(ProtocolError, match="before its DICT frame"):
        decoder.feed(chunk)


def test_decoder_rejects_truncated_stream():
    result = make_engine().execute(SQL)
    header, payloads, end = build_stream_frames(5, result, chunk_rows=90)
    decoder = StreamDecoder(header)
    for payload in payloads[:-1]:  # drop the last chunk
        decoder.feed(payload)
    with pytest.raises(ProtocolError, match="of 4 chunks"):
        decoder.finish(end)


# ----------------------------------------------------------------------
# End-to-end over a socket
# ----------------------------------------------------------------------
def test_v2_and_v1_fetch_identical_rows(server):
    with connect(port=server.port, protocol_version=2) as v2:
        streamed = v2.execute(SQL)
    with connect(port=server.port, protocol_version=1) as v1:
        legacy = v1.execute(SQL)
    assert streamed.streamed is True
    assert legacy.streamed is False
    assert streamed.columns == legacy.columns
    assert streamed.rows == legacy.rows
    assert streamed.row_count == legacy.row_count == 300
    assert server.streamed_results >= 1


def test_version_negotiation_recorded(server):
    with connect(port=server.port, protocol_version=1) as v1:
        assert v1.protocol_version == 1
    with connect(port=server.port) as v2:
        assert v2.protocol_version == PROTOCOL_VERSION_2


def test_small_results_stay_json_on_v2(server):
    with connect(port=server.port) as client:
        result = client.execute("SELECT COUNT(*) FROM owner")
        assert result.rows == [(300,)]
        assert result.streamed is False


def test_iterate_yields_incremental_batches(server):
    with connect(port=server.port) as client:
        batches = list(client.iterate(SQL))
    assert len(batches) == 3  # 300 rows / 100-row chunks
    assert [len(b) for b in batches] == [100, 100, 100]
    rows = [row for batch in batches for row in batch]
    with connect(port=server.port, protocol_version=1) as v1:
        assert rows == v1.execute(SQL).rows


def test_execute_streaming_callback_sees_every_chunk(server):
    seen = []
    with connect(port=server.port) as client:
        result = client.execute_streaming(
            SQL, lambda columns, rows: seen.append((tuple(columns), len(rows)))
        )
    assert result.streamed is True
    assert [n for _, n in seen] == [100, 100, 100]
    assert all(cols == tuple(result.columns) for cols, _ in seen)
    assert sum(n for _, n in seen) == len(result.rows)


def test_unstreamed_callback_fires_once(server):
    seen = []
    with connect(port=server.port) as client:
        result = client.execute_streaming(
            "SELECT COUNT(*) FROM car",
            lambda columns, rows: seen.append(rows),
        )
    assert result.streamed is False
    assert seen == [[(60,)]]


def test_dml_and_errors_unaffected_by_v2(server):
    with connect(port=server.port) as client:
        deleted = client.execute("DELETE FROM car WHERE id < 10")
        assert deleted.statement_type == "delete"
        assert deleted.streamed is False
        with pytest.raises(Exception):
            client.execute("SELECT nosuch FROM owner")
        assert client.execute("SELECT COUNT(*) FROM owner").rows == [(300,)]


# ----------------------------------------------------------------------
# The 32 MiB cap on the legacy JSON path
# ----------------------------------------------------------------------
def test_v1_oversized_result_reports_frame_too_large(server, monkeypatch):
    import repro.server.protocol as protocol

    # Shrink the cap instead of building a >32 MiB result: encode_frame
    # reads the module global at call time, and the error frame itself
    # stays tiny.
    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 4096)
    with connect(port=server.port, protocol_version=1) as client:
        with pytest.raises(FrameTooLargeError) as excinfo:
            client.execute(SQL)
        message = str(excinfo.value)
        assert "4096" in message
        assert "protocol version 2" in message
        # The connection survives the refusal.
        assert client.execute("SELECT COUNT(*) FROM owner").rows == [(300,)]


def test_v2_streams_past_the_json_cap(server, monkeypatch):
    import repro.server.protocol as protocol

    # The same result that breaks v1 under a 4 KiB cap streams fine on
    # v2: each binary chunk is far below the cap.
    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 4096)
    with connect(port=server.port) as client:
        result = client.execute(SQL)
        assert result.streamed is True
        assert result.row_count == 300


# ----------------------------------------------------------------------
# Wrong-direction and mid-stream failures
# ----------------------------------------------------------------------
def test_client_sent_binary_frame_rejected(server):
    with socket.create_connection(("127.0.0.1", server.port), 5) as sock:
        stream = sock.makefile("rb")
        sock.sendall(encode_frame({"type": "hello", "version": 2}))
        assert read_frame_blocking(stream)["type"] == "hello_ok"
        sock.sendall(encode_binary_frame(b"\x02" + b"\x00" * 20))
        reply = read_frame_blocking(stream)
        assert reply["type"] == "error"
        assert reply["code"] == "PROTOCOL"
    # The server keeps serving.
    with connect(port=server.port) as client:
        assert client.execute("SELECT COUNT(*) FROM owner").row_count == 1


def test_mid_stream_disconnect_releases_the_session(server):
    sock = socket.create_connection(("127.0.0.1", server.port), 5)
    stream = sock.makefile("rb")
    sock.sendall(encode_frame({"type": "hello", "version": 2}))
    assert read_frame_blocking(stream)["type"] == "hello_ok"
    sock.sendall(encode_frame({"type": "query", "id": 1, "sql": SQL}))
    # Read just the header, then vanish mid-stream. (Close the makefile
    # wrapper too — it holds its own reference to the fd.)
    assert read_frame_blocking(stream)["type"] == "result_header"
    stream.close()
    sock.close()
    # The session (and any locks it held) must be released: a write
    # statement through a fresh connection cannot succeed otherwise.
    deadline = time.monotonic() + 5.0
    with connect(port=server.port) as client:
        deleted = client.execute("DELETE FROM car WHERE id >= 55")
        assert deleted.affected_rows >= 1
        while time.monotonic() < deadline:
            if client.stats()["server"]["connections"] == 1:
                break
            time.sleep(0.05)
        assert client.stats()["server"]["connections"] == 1
