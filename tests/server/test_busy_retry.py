"""Client-side BUSY handling: jittered backoff, bounded retries,
structured exhaustion errors, and the client-level ``max_retries`` knob.
"""

import random
import time

import pytest

from repro import Engine, EngineConfig
from repro.server import ReproServer, ServerBusyError, connect
from repro.server.client import MAX_BUSY_BACKOFF, _backoff_delay
from tests.conftest import build_mini_db


def test_backoff_is_exponential_and_jittered():
    random.seed(4)
    base = 0.05
    for attempt in range(12):
        ceiling = min(base * 2**attempt, MAX_BUSY_BACKOFF)
        samples = [_backoff_delay(base, attempt) for _ in range(50)]
        # Jitter keeps every delay within [ceiling/2, ceiling]: bounded
        # above (no runaway sleeps) and spread out (no thundering herd).
        assert all(ceiling / 2 <= s <= ceiling for s in samples)
        assert len(set(samples)) > 1
    assert _backoff_delay(0.05, 30) <= MAX_BUSY_BACKOFF


@pytest.fixture
def busy_server():
    """A server under a held write lock with ``per_client_inflight=1``:
    once a connection pipelines one (blocked) statement, every further
    request on it is refused with a retryable BUSY frame."""
    db = build_mini_db(n_owners=30, n_cars=60, seed=2)
    engine = Engine(db, EngineConfig())
    server = ReproServer(
        engine, port=0, max_inflight=4, per_client_inflight=1
    ).start_in_thread()
    engine.rwlock.acquire_write()
    yield server
    engine.rwlock.release_write()
    server.stop_from_thread()


def occupy(client) -> None:
    """Fill the connection's single admission slot with a statement that
    blocks on the held write lock."""
    client.send_raw(
        {
            "type": "query",
            "id": client.next_id(),
            "sql": "SELECT COUNT(*) FROM car",
        }
    )
    time.sleep(0.2)  # let it get admitted before the next request


def test_exhausted_retries_raise_structured_error(busy_server):
    with connect(port=busy_server.port) as client:
        occupy(client)
        with pytest.raises(ServerBusyError) as excinfo:
            client.execute(
                "SELECT COUNT(*) FROM owner",
                busy_retries=3,
                busy_backoff=0.001,
            )
        exc = excinfo.value
        assert exc.attempts == 4  # 1 try + 3 retries
        assert exc.cap == 1
        assert "3 retries" in str(exc)
        # Chained from the final BUSY refusal.
        assert isinstance(exc.__cause__, ServerBusyError)


def test_zero_retries_raise_immediately(busy_server):
    with connect(port=busy_server.port) as client:
        occupy(client)
        with pytest.raises(ServerBusyError) as excinfo:
            client.execute("SELECT COUNT(*) FROM owner", busy_retries=0)
        assert excinfo.value.attempts == 1


def test_client_level_max_retries_knob(busy_server):
    # The connection-level knob applies when execute() passes nothing.
    with connect(
        port=busy_server.port, max_retries=2, busy_backoff=0.001
    ) as client:
        occupy(client)
        with pytest.raises(ServerBusyError) as excinfo:
            client.execute("SELECT COUNT(*) FROM owner")
        assert excinfo.value.attempts == 3


def test_retries_succeed_once_the_slot_frees(busy_server):
    import threading

    with connect(port=busy_server.port) as client:
        occupy(client)
        # Release the blocker shortly after the retry loop starts.
        releaser = threading.Timer(
            0.3, busy_server.engine.rwlock.release_write
        )
        releaser.start()
        try:
            result = client.execute(
                "SELECT COUNT(*) FROM owner",
                busy_retries=20,
                busy_backoff=0.05,
            )
            assert result.rows == [(30,)]
        finally:
            releaser.join()
            # The fixture's teardown releases again; re-acquire for it.
            busy_server.engine.rwlock.acquire_write()
