"""End-to-end server smoke: the CI gate for the network front-end.

Four concurrent network clients drive mixed SELECT/DML streams (built so
any interleaving is answer-preserving — see
:func:`repro.workload.mixed_client_streams`) against one server. Every
per-statement result must be byte-identical to a fully sequential run of
the same streams on a reference engine, the final table states must
match, and the server must shut down cleanly.
"""

import threading

from repro import Engine, EngineConfig
from repro.server import ReproServer, connect
from repro.workload import build_car_database, mixed_client_streams

SCALE = 0.002
SEED = 0
N_CLIENTS = 4


def build_engine() -> Engine:
    db, _ = build_car_database(scale=SCALE, seed=SEED)
    return Engine(
        db, EngineConfig.with_jits(s_max=0.5, migration_interval=20)
    )


def normalize(result):
    return (
        result.statement_type,
        sorted(result.rows),
        result.affected_rows,
    )


def test_four_client_mixed_workload_matches_sequential_reference():
    streams = mixed_client_streams(n_clients=N_CLIENTS, per_client=12)

    # Sequential reference: one engine, streams round-robin interleaved.
    reference = build_engine()
    expected = [[] for _ in streams]
    sessions = [reference.session() for _ in streams]
    for turn in range(max(len(s) for s in streams)):
        for i, stream in enumerate(streams):
            if turn < len(stream):
                expected[i].append(normalize(sessions[i].execute(stream[turn])))

    # Concurrent run over the socket.
    engine = build_engine()
    server = ReproServer(
        engine, port=0, max_inflight=N_CLIENTS, per_client_inflight=2
    ).start_in_thread()
    got = [None] * len(streams)
    errors = []

    def client_thread(i: int) -> None:
        try:
            with connect(port=server.port) as client:
                got[i] = [
                    normalize(client.execute(sql, busy_retries=10))
                    for sql in streams[i]
                ]
        except Exception as exc:  # surfaced below; threads must not die
            errors.append((i, exc))

    threads = [
        threading.Thread(target=client_thread, args=(i,))
        for i in range(len(streams))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors, errors
    assert all(g is not None for g in got)

    for i, (want, have) in enumerate(zip(expected, got)):
        assert have == want, f"client {i} diverged from sequential reference"

    # Final data states agree exactly.
    for name in engine.database.table_names():
        assert (
            engine.database.table(name).row_count
            == reference.database.table(name).row_count
        ), name
        assert (
            engine.database.table(name).udi_total
            == reference.database.table(name).udi_total
        ), name

    # Clean shutdown under the CI timeout.
    server.stop_from_thread()
    assert not server._thread.is_alive()
