"""Smoke tests: every example script runs end to end (tiny parameters)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "olap_workload.py",
        "histogram_feedback.py",
        "sensitivity_tuning.py",
        "observe_demo.py",
    } <= names


def test_quickstart_runs(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "JITS enabled" in out
    assert "sampled tables" in out


def test_histogram_feedback_runs(capsys):
    load_example("histogram_feedback.py")
    module = load_example("histogram_feedback.py")
    module.figure2()
    module.table1()
    out = capsys.readouterr().out
    assert "maximum-entropy" in out
    assert "statlist" in out


def test_olap_workload_runs(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "0.001")
    monkeypatch.setenv("REPRO_STATEMENTS", "30")
    load_example("olap_workload.py").main()
    out = capsys.readouterr().out
    assert "plan cost" in out
    assert "jits" in out


def test_observe_demo_runs(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "0.001")
    monkeypatch.setenv("REPRO_STATEMENTS", "24")
    load_example("observe_demo.py").main()
    out = capsys.readouterr().out
    assert "top fingerprints" in out
    assert "fingerprint(s) tracked" in out
    assert "index advisor decisions" in out


def test_sensitivity_tuning_runs(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SCALE", "0.001")
    monkeypatch.setenv("REPRO_STATEMENTS", "20")
    load_example("sensitivity_tuning.py").main()
    out = capsys.readouterr().out
    assert "s_max" in out
    assert "1.0" in out
