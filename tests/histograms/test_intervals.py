"""Interval and Region algebra."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.histograms import FULL, Interval, Region, hull

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def test_empty_and_width():
    assert Interval(5, 5).is_empty
    assert Interval(5, 4).is_empty
    assert not Interval(4, 5).is_empty
    assert Interval(4, 5).width == 1


def test_contains_value_half_open():
    iv = Interval(1, 3)
    assert iv.contains_value(1)
    assert iv.contains_value(2.999)
    assert not iv.contains_value(3)
    assert not iv.contains_value(0.999)


def test_unbounded():
    assert FULL.is_unbounded
    assert FULL.contains_value(1e300)
    assert FULL.width == math.inf


def test_nan_rejected():
    with pytest.raises(ValueError):
        Interval(float("nan"), 1)


def test_intersect():
    assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)
    assert Interval(0, 5).intersect(Interval(5, 10)).is_empty


def test_overlap_fraction():
    box = Interval(0, 10)
    assert Interval(0, 5).overlap_fraction(box) == 0.5
    assert Interval(-10, 20).overlap_fraction(box) == 1.0
    assert Interval(20, 30).overlap_fraction(box) == 0.0


def test_overlap_fraction_zero_width_box():
    point = Interval(5, 5)
    assert Interval(0, 10).overlap_fraction(point) == 1.0
    assert Interval(6, 10).overlap_fraction(point) == 0.0


def test_contains_interval():
    assert Interval(0, 10).contains_interval(Interval(2, 3))
    assert Interval(0, 10).contains_interval(Interval(5, 5))  # empty
    assert not Interval(0, 10).contains_interval(Interval(5, 11))


def test_region_intersect_and_contains():
    a = Region.of(Interval(0, 10), Interval(0, 10))
    b = Region.of(Interval(5, 20), Interval(-5, 5))
    inter = a.intersect(b)
    assert inter.intervals == (Interval(5, 10), Interval(0, 5))
    assert a.contains(inter)
    assert not b.contains(a)


def test_region_dim_mismatch():
    with pytest.raises(ValueError):
        Region.of(Interval(0, 1)).intersect(Region.full(2))


def test_region_empty():
    assert Region.of(Interval(0, 1), Interval(3, 3)).is_empty
    assert not Region.full(3).is_empty


def test_volume_fraction():
    within = Region.of(Interval(0, 10), Interval(0, 10))
    quarter = Region.of(Interval(0, 5), Interval(0, 5))
    assert quarter.volume_fraction(within) == 0.25


def test_hull():
    assert hull([Interval(0, 1), Interval(5, 9)]) == Interval(0, 9)
    assert hull([Interval(3, 3)]) is None
    assert hull([]) is None


@given(finite, finite, finite, finite)
def test_intersect_commutes_and_shrinks(a, b, c, d):
    x = Interval(min(a, b), max(a, b))
    y = Interval(min(c, d), max(c, d))
    lhs = x.intersect(y)
    rhs = y.intersect(x)
    assert lhs == rhs
    if not lhs.is_empty:
        assert lhs.width <= min(x.width, y.width)
        assert x.contains_interval(lhs) and y.contains_interval(lhs)


@given(finite, finite, finite)
def test_membership_respects_intersection(a, b, v):
    x = Interval(min(a, b), max(a, b))
    y = Interval(-100.0, 100.0)
    inter = x.intersect(y)
    assert inter.contains_value(v) == (x.contains_value(v) and y.contains_value(v))
