"""Adaptive grid histograms: the paper's Figure 2 walkthrough + invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.histograms import (
    AdaptiveGridHistogram,
    Interval,
    Region,
    domain_for_values,
)

INF = math.inf


def fig2_histogram() -> AdaptiveGridHistogram:
    """The 2-D histogram of paper Figure 2(a): a in [0,50), b in [0,100),
    100 tuples, one bucket."""
    return AdaptiveGridHistogram(
        Region.of(Interval(0, 50), Interval(0, 100)), total=100, now=0
    )


def test_initial_state():
    h = fig2_histogram()
    assert h.n_cells == 1
    assert h.total_mass == pytest.approx(100)
    assert h.estimate_count(Region.of(Interval(0, 25), Interval(0, 100))) == (
        pytest.approx(50)
    )


def test_figure2_b_joint_and_marginals():
    """Figure 2(b): observe the joint (a>20 & b>60)=20 plus the marginals
    a>20 = 70 and b>60 = 30 from the same sample."""
    h = fig2_histogram()
    h.observe(Region.of(Interval(20, 50), Interval(60, 100)), 20, total=100, now=1)
    h.observe(Region.of(Interval(20, 50), Interval(0, 100)), 70, now=1)
    h.observe(Region.of(Interval(0, 50), Interval(60, 100)), 30, now=1)
    assert h.n_cells == 4
    assert h.total_mass == pytest.approx(100, rel=1e-2)
    joint = h.estimate_count(Region.of(Interval(20, 50), Interval(60, 100)))
    assert joint == pytest.approx(20, rel=0.02)
    a_only = h.estimate_count(Region.of(Interval(20, 50), Interval(0, 100)))
    assert a_only == pytest.approx(70, rel=0.02)
    b_only = h.estimate_count(Region.of(Interval(0, 50), Interval(60, 100)))
    assert b_only == pytest.approx(30, rel=0.02)
    # Max-entropy fills the implied fourth quadrant: a<=20 has 30 tuples,
    # of which b>60 accounts for 30-20=10, leaving (a<=20 & b<=60) = 20.
    rest = h.estimate_count(Region.of(Interval(0, 20), Interval(0, 60)))
    assert rest == pytest.approx(20, rel=0.05)


def test_figure2_c_second_query():
    """Figure 2(c): a later query observes a>40 = 14; the new boundary
    splits buckets under uniformity, then counts recalibrate."""
    h = fig2_histogram()
    h.observe(Region.of(Interval(20, 50), Interval(60, 100)), 20, total=100, now=1)
    h.observe(Region.of(Interval(20, 50), Interval(0, 100)), 70, now=1)
    h.observe(Region.of(Interval(0, 50), Interval(60, 100)), 30, now=1)
    h.observe(Region.of(Interval(40, 50), Interval(-INF, INF)), 14, now=2)
    assert h.n_cells == 6
    got = h.estimate_count(Region.of(Interval(40, 50), Interval(-INF, INF)))
    assert got == pytest.approx(14, rel=0.02)
    # The earlier joint fact still holds.
    joint = h.estimate_count(Region.of(Interval(20, 50), Interval(60, 100)))
    assert joint == pytest.approx(20, rel=0.05)


def test_timestamps_updated_for_touched_cells():
    h = fig2_histogram()
    h.observe(Region.of(Interval(20, 50), Interval(60, 100)), 20, total=100, now=7)
    touched = h.freshness(Region.of(Interval(20, 50), Interval(60, 100)))
    untouched = h.freshness(Region.of(Interval(0, 20), Interval(0, 60)))
    assert touched == 7
    assert untouched == 0


def test_observe_region_outside_domain_extends():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 10)), total=50, now=0)
    h.observe(Region.of(Interval(8, 15)), 10, total=60, now=1)
    assert h.domain.intervals[0].high == pytest.approx(15)
    assert h.estimate_count(Region.of(Interval(8, 15))) == pytest.approx(10, rel=0.02)


def test_total_refresh_rescales():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 10)), total=100, now=0)
    h.observe(Region.of(Interval(0, 5)), 80, total=200, now=1)
    assert h.total_mass == pytest.approx(200, rel=1e-2)


def test_reobservation_supersedes():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 10)), total=100, now=0)
    region = Region.of(Interval(0, 5))
    h.observe(region, 80, total=100, now=1)
    h.observe(region, 20, total=100, now=2)
    assert h.estimate_count(region) == pytest.approx(20, rel=0.02)
    # Only one constraint for the region is retained.
    matching = [c for c in h.constraints if c.region == region]
    assert len(matching) == 1


def test_boundary_budget_enforced_by_merging():
    h = AdaptiveGridHistogram(
        Region.of(Interval(0, 1000)), total=1000, now=0, max_boundaries_per_dim=8
    )
    for i in range(30):
        lo = float(i * 30)
        h.observe(Region.of(Interval(lo, lo + 15)), 15, now=i)
    assert len(h.boundaries[0]) - 1 <= 8
    assert h.total_mass == pytest.approx(1000, rel=0.25)


def test_constraint_budget_enforced():
    h = AdaptiveGridHistogram(
        Region.of(Interval(0, 100)), total=100, now=0, max_constraints=5
    )
    for i in range(20):
        h.observe(Region.of(Interval(float(i), float(i + 1))), 1, now=i)
    assert len(h.constraints) <= 5


def test_uniformity_metric():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 100)), total=100, now=0)
    assert h.uniformity() == pytest.approx(0.0)
    h.observe(Region.of(Interval(0, 10)), 90, now=1)
    assert h.uniformity() > 0.5


def test_estimate_selectivity_bounds():
    h = fig2_histogram()
    assert h.estimate_selectivity(Region.full(2)) == pytest.approx(1.0)
    assert h.estimate_selectivity(
        Region.of(Interval(5, 5), Interval(0, 100))
    ) == pytest.approx(0.0)


def test_bad_inputs():
    with pytest.raises(StatisticsError):
        AdaptiveGridHistogram(Region.of(Interval(0, INF)), total=10)
    with pytest.raises(StatisticsError):
        AdaptiveGridHistogram(Region.of(Interval(5, 5)), total=10)
    h = fig2_histogram()
    with pytest.raises(StatisticsError):
        h.observe(Region.of(Interval(0, 1)), 5)  # wrong ndim
    with pytest.raises(StatisticsError):
        h.observe(Region.full(2), -3)


def test_from_data_exact_counts():
    rng = np.random.default_rng(0)
    a = rng.uniform(0, 100, 5000)
    b = rng.uniform(0, 50, 5000)
    domain = Region.of(Interval(0, 100.0001), Interval(0, 50.0001))
    h = AdaptiveGridHistogram.from_data([a, b], domain, bins_per_dim=8)
    assert h.total_mass == pytest.approx(5000)
    est = h.estimate_count(Region.of(Interval(0, 50), Interval(-INF, INF)))
    actual = int((a < 50).sum())
    assert est == pytest.approx(actual, rel=0.05)


def test_domain_for_values():
    assert domain_for_values(0, 10, integral=True) == Interval(0.0, 11.0)
    iv = domain_for_values(0.0, 10.0, integral=False)
    assert iv.low == 0.0 and iv.high > 10.0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_grid_invariants_property(data):
    """Consistent observation sequences keep every invariant tight.

    Counts are drawn *consistently* from a hidden uniform distribution
    (volume fraction x total, plus small noise), as real sampled facts
    would be; mutually contradictory facts are exercised separately.
    """
    # Boundary budget generous enough that merging never fires here; the
    # merge path is covered by test_boundary_budget_enforced_by_merging.
    h = AdaptiveGridHistogram(
        Region.of(Interval(0, 100), Interval(0, 100)),
        total=1000,
        now=0,
        max_boundaries_per_dim=40,
    )
    n_obs = data.draw(st.integers(min_value=1, max_value=8))
    for i in range(n_obs):
        lo_a = data.draw(st.floats(min_value=0, max_value=99))
        hi_a = data.draw(st.floats(min_value=lo_a + 0.5, max_value=100))
        lo_b = data.draw(st.floats(min_value=0, max_value=99))
        hi_b = data.draw(st.floats(min_value=lo_b + 0.5, max_value=100))
        noise = data.draw(st.floats(min_value=0.95, max_value=1.05))
        region = Region.of(Interval(lo_a, hi_a), Interval(lo_b, hi_b))
        volume = ((hi_a - lo_a) / 100.0) * ((hi_b - lo_b) / 100.0)
        count = min(1000.0, 1000.0 * volume * noise)
        h.observe(region, count, total=1000.0, now=i + 1)
        assert np.all(h.counts >= 0)
        assert h.total_mass == pytest.approx(1000.0, rel=0.1)
        # The just-observed fact is reproduced (boundaries are fresh).
        assert h.estimate_count(region) == pytest.approx(
            count, rel=0.1, abs=2.0
        )


def test_contradictory_facts_stay_bounded():
    """Impossible fact sequences must not corrupt the structure."""
    h = AdaptiveGridHistogram(
        Region.of(Interval(0, 100), Interval(0, 100)), total=1000, now=0
    )
    # A tiny region claiming all the mass, then a huge region claiming none.
    h.observe(Region.of(Interval(0, 1), Interval(0, 1)), 1000, total=1000, now=1)
    h.observe(Region.of(Interval(0, 60), Interval(0, 100)), 0, now=2)
    assert np.all(h.counts >= 0)
    assert np.isfinite(h.total_mass)
    sel = h.estimate_selectivity(Region.full(2))
    assert 0.0 <= sel <= 1.0
