"""Equi-depth histograms: construction invariants and estimation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.histograms import EquiDepthHistogram, Interval


def test_build_mass_equals_input():
    data = np.random.default_rng(0).normal(0, 1, 5000)
    h = EquiDepthHistogram.build(data, n_buckets=20)
    assert h.total == pytest.approx(5000)


def test_buckets_roughly_equal_depth():
    data = np.random.default_rng(1).uniform(0, 1, 10_000)
    h = EquiDepthHistogram.build(data, n_buckets=10)
    assert h.n_buckets == 10
    assert h.counts.min() > 800 and h.counts.max() < 1200


def test_duplicate_heavy_data_collapses_buckets():
    data = np.array([5.0] * 100 + [1.0, 9.0])
    h = EquiDepthHistogram.build(data, n_buckets=10)
    assert h.total == pytest.approx(102)
    assert h.n_buckets <= 10


def test_single_value_data():
    h = EquiDepthHistogram.build(np.array([3.0, 3.0, 3.0]))
    assert h.total == pytest.approx(3)
    assert h.estimate_selectivity(Interval(2.9, 3.1)) == pytest.approx(1.0)


def test_estimate_full_range():
    data = np.random.default_rng(2).uniform(10, 20, 1000)
    h = EquiDepthHistogram.build(data)
    assert h.estimate_count(Interval(-1e9, 1e9)) == pytest.approx(1000, rel=1e-6)


def test_estimate_half_range_uniform():
    data = np.linspace(0, 100, 10_001)
    h = EquiDepthHistogram.build(data, n_buckets=20)
    sel = h.estimate_selectivity(Interval(0, 50))
    assert abs(sel - 0.5) < 0.02


def test_estimate_empty_interval():
    h = EquiDepthHistogram.build(np.arange(100.0))
    assert h.estimate_count(Interval(5, 5)) == 0.0
    assert h.estimate_count(Interval(500, 600)) == 0.0


def test_validation_errors():
    with pytest.raises(StatisticsError):
        EquiDepthHistogram(boundaries=np.array([0.0, 1.0]), counts=np.array([1.0, 2.0]))
    with pytest.raises(StatisticsError):
        EquiDepthHistogram(boundaries=np.array([1.0, 0.0]), counts=np.array([1.0]))
    with pytest.raises(StatisticsError):
        EquiDepthHistogram(boundaries=np.array([0.0, 1.0]), counts=np.array([-1.0]))
    with pytest.raises(StatisticsError):
        EquiDepthHistogram.build(np.array([]))
    with pytest.raises(StatisticsError):
        EquiDepthHistogram.build(np.array([1.0]), n_buckets=0)


def test_scaled():
    h = EquiDepthHistogram.build(np.arange(100.0), n_buckets=4)
    doubled = h.scaled(2.0)
    assert doubled.total == pytest.approx(2 * h.total)
    with pytest.raises(StatisticsError):
        h.scaled(-1.0)


def test_bucket_of_clips():
    h = EquiDepthHistogram.build(np.arange(100.0), n_buckets=4)
    assert h.bucket_of(-50) == 0
    assert h.bucket_of(1e9) == h.n_buckets - 1


def test_densities_shape():
    h = EquiDepthHistogram.build(np.arange(100.0), n_buckets=5)
    assert len(h.densities()) == h.n_buckets
    assert np.all(h.densities() >= 0)


@given(
    st.lists(
        st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        min_size=2,
        max_size=300,
    ),
    st.integers(min_value=1, max_value=16),
)
def test_build_invariants(values, n_buckets):
    data = np.asarray(values)
    h = EquiDepthHistogram.build(data, n_buckets=n_buckets)
    # Mass conservation.
    assert h.total == pytest.approx(len(values))
    # Boundaries strictly increasing.
    assert np.all(np.diff(h.boundaries) > 0)
    # Max value is covered by the nudged final boundary.
    assert h.estimate_count(Interval(-1e18, 1e18)) == pytest.approx(
        len(values), rel=1e-9
    )


@given(
    st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        min_size=5,
        max_size=200,
    ),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
)
def test_selectivity_bounded(values, a, b):
    h = EquiDepthHistogram.build(np.asarray(values), n_buckets=8)
    sel = h.estimate_selectivity(Interval(min(a, b), max(a, b)))
    assert 0.0 <= sel <= 1.0
