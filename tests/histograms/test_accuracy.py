"""Section 3.3.2 accuracy metric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.histograms import (
    Interval,
    Region,
    boundary_accuracy,
    interval_accuracy,
    region_accuracy,
)


def test_value_on_boundary_is_exact():
    boundaries = [0.0, 10.0, 20.0, 30.0]
    for b in boundaries:
        assert boundary_accuracy(boundaries, b) == pytest.approx(1.0)


def test_mid_bucket_least_accurate():
    boundaries = [0.0, 10.0]
    # The paper's formula: u = (min/max ratio) * bucket_share.
    # Mid-bucket: d1 = d2 -> ratio 1; single bucket -> share 1 -> acc 0.
    assert boundary_accuracy(boundaries, 5.0) == pytest.approx(0.0)


def test_accuracy_increases_toward_boundary():
    boundaries = [0.0, 10.0, 20.0]
    a_near = boundary_accuracy(boundaries, 1.0)
    a_mid = boundary_accuracy(boundaries, 5.0)
    assert a_near > a_mid


def test_wide_bucket_less_accurate():
    narrow = [0.0, 2.0, 100.0]
    value = 1.0  # mid of the narrow bucket
    wide_mid = 51.0  # mid of the wide bucket
    assert boundary_accuracy(narrow, value) > boundary_accuracy(narrow, wide_mid)


def test_paper_formula_example():
    # b = [0, 10, 50]; value 2 in bucket [0,10): d1=2, d2=8,
    # u = (2/8) * (10/50) = 0.05 -> accuracy 0.95.
    assert boundary_accuracy([0.0, 10.0, 50.0], 2.0) == pytest.approx(0.95)


def test_out_of_range_clipped():
    boundaries = [0.0, 10.0]
    assert boundary_accuracy(boundaries, -5.0) == pytest.approx(1.0)
    assert boundary_accuracy(boundaries, 15.0) == pytest.approx(1.0)


def test_degenerate_boundaries():
    assert boundary_accuracy([], 1.0) == 0.0
    assert boundary_accuracy([5.0], 1.0) == 0.0
    assert boundary_accuracy([5.0, 5.0], 5.0) == 0.0


def test_interval_accuracy_combines_endpoints():
    boundaries = [0.0, 10.0, 20.0]
    both = interval_accuracy(boundaries, Interval(10.0, 20.0))
    assert both == pytest.approx(1.0)
    one_off = interval_accuracy(boundaries, Interval(10.0, 15.0))
    assert one_off < 1.0


def test_interval_accuracy_unbounded_side_free():
    boundaries = [0.0, 10.0, 20.0]
    assert interval_accuracy(boundaries, Interval(high=10.0)) == pytest.approx(1.0)
    assert interval_accuracy(boundaries, Interval()) == pytest.approx(1.0)


def test_region_accuracy_product():
    boundaries = [[0.0, 10.0, 20.0], [0.0, 100.0]]
    region = Region.of(Interval(10.0, 20.0), Interval(50.0, 100.0))
    per_dim1 = interval_accuracy(boundaries[0], region.intervals[0])
    per_dim2 = interval_accuracy(boundaries[1], region.intervals[1])
    assert region_accuracy(boundaries, region) == pytest.approx(
        per_dim1 * per_dim2
    )


def test_region_accuracy_dim_mismatch():
    with pytest.raises(ValueError):
        region_accuracy([[0.0, 1.0]], Region.full(2))


@given(
    st.lists(
        st.floats(min_value=0, max_value=1000, allow_nan=False),
        min_size=2,
        max_size=20,
        unique=True,
    ),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
)
def test_accuracy_bounded_property(raw_boundaries, value):
    boundaries = sorted(raw_boundaries)
    acc = boundary_accuracy(boundaries, value)
    assert 0.0 <= acc <= 1.0
