"""CalibrationPlan edge cases: ordering, inconsistency, reuse, equivalence."""

import numpy as np
import pytest

from repro.histograms import (
    CalibrationPlan,
    CellConstraint,
    iterative_scaling,
    make_constraints,
    max_abs_violation,
)


def test_zero_target_applied_first_regardless_of_recency():
    # The zero-target constraint arrives *after* the positive one; applying
    # it last would wipe the mass the positive constraint just placed. The
    # plan reorders zero targets first, so both end up satisfied.
    counts = np.array([1.0, 1.0])
    constraints = make_constraints(
        [(np.array([0, 1]), 10.0), (np.array([0]), 0.0)]
    )
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert out[0] == 0.0
    assert out[1] == pytest.approx(10.0)


def test_inconsistent_constraints_bounded_not_converged():
    counts = np.array([10.0, 10.0])
    # Contradictory totals over the same cells: no solution exists.
    constraints = make_constraints(
        [(np.array([0, 1]), 100.0), (np.array([0, 1]), 40.0)]
    )
    out, converged = iterative_scaling(counts, constraints, max_iterations=16)
    assert not converged
    assert np.all(np.isfinite(out)) and np.all(out >= 0)
    # The oscillation stays inside the band spanned by the targets.
    assert 40.0 - 1e-9 <= out.sum() <= 100.0 + 1e-9


def test_empty_cell_constraint_is_skipped():
    counts = np.array([3.0, 7.0])
    constraints = [
        CellConstraint(cells=np.empty(0, dtype=np.int64), target=5.0, sequence=0),
        CellConstraint(cells=np.array([1]), target=14.0, sequence=1),
    ]
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert out[0] == pytest.approx(3.0)
    assert out[1] == pytest.approx(14.0)


def test_only_empty_constraints_converges_to_identity():
    counts = np.array([1.0, 2.0])
    constraints = [
        CellConstraint(cells=np.empty(0, dtype=np.int64), target=9.0)
    ]
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert np.array_equal(out, counts)


def test_plan_matches_one_shot_entry_point():
    rng = np.random.default_rng(11)
    counts = rng.uniform(0.0, 20.0, size=12)
    pairs = [
        (np.arange(6), 40.0),
        (np.arange(6, 12), 25.0),
        (np.array([0, 3, 7]), 9.0),
        (np.array([5]), 0.0),
    ]
    constraints = make_constraints(pairs)
    plan = CalibrationPlan(constraints)
    a, ca = plan.run(counts)
    b, cb = iterative_scaling(counts, constraints)
    assert ca == cb
    np.testing.assert_allclose(a, b)


def test_plan_is_reusable_across_counts_vectors():
    constraints = make_constraints(
        [(np.array([0, 1]), 12.0), (np.array([2, 3]), 4.0)]
    )
    plan = CalibrationPlan(constraints)
    for seed in range(5):
        counts = np.random.default_rng(seed).uniform(0.1, 5.0, size=4)
        out, converged = plan.run(counts)
        assert converged
        assert max_abs_violation(out, constraints) < 0.02
        # run() never mutates its input or the plan's own state.
        again, _ = plan.run(counts)
        np.testing.assert_allclose(out, again)


def test_plan_input_validation():
    from repro.errors import StatisticsError

    plan = CalibrationPlan(make_constraints([(np.array([0]), 1.0)]))
    with pytest.raises(StatisticsError):
        plan.run(np.ones((2, 2)))
    with pytest.raises(StatisticsError):
        plan.run(np.array([-1.0]))
