"""Additional grid histogram behaviours: from_data options, calibrate flag,
merging details, freshness."""

import numpy as np
import pytest

from repro.histograms import AdaptiveGridHistogram, Interval, Region


def test_calibrate_false_keeps_only_newest_fact():
    domain = Region.of(Interval(0, 100))
    naive = AdaptiveGridHistogram(domain, total=100, calibrate=False)
    naive.observe(Region.of(Interval(0, 50)), 80, total=100, now=1)
    naive.observe(Region.of(Interval(25, 75)), 10, now=2)
    # The newest fact holds...
    assert naive.estimate_count(Region.of(Interval(25, 75))) == pytest.approx(
        10, rel=0.05
    )
    # ...but older knowledge (total = 100) has drifted.
    calibrated = AdaptiveGridHistogram(domain, total=100, calibrate=True)
    calibrated.observe(Region.of(Interval(0, 50)), 80, total=100, now=1)
    calibrated.observe(Region.of(Interval(25, 75)), 10, now=2)
    drift_naive = abs(naive.total_mass - 100)
    drift_cal = abs(calibrated.total_mass - 100)
    assert drift_cal <= drift_naive + 1e-6


def test_from_data_integral_dims_point_queries():
    codes = np.array([0, 0, 0, 1, 1, 2] * 50, dtype=np.float64)
    values = np.linspace(0, 10, len(codes))
    domain = Region.of(Interval(0, 3), Interval(0, 10.001))
    hist = AdaptiveGridHistogram.from_data(
        [codes, values], domain, bins_per_dim=4, integral_dims=[True, False]
    )
    # Point query on the largest code must not collapse to ~0.
    sel = hist.estimate_selectivity(
        Region.of(Interval(2, 3), Interval(float("-inf"), float("inf")))
    )
    assert sel == pytest.approx(50 / 300, rel=0.1)


def test_from_data_empty_dim_guard():
    data = np.full(10, 5.0)
    hist = AdaptiveGridHistogram.from_data(
        [data], Region.of(Interval(0, 10)), bins_per_dim=4
    )
    assert hist.total_mass == pytest.approx(10)


def test_merge_combines_timestamps():
    h = AdaptiveGridHistogram(
        Region.of(Interval(0, 100)), total=100, max_boundaries_per_dim=3
    )
    h.observe(Region.of(Interval(10, 20)), 10, now=1)
    h.observe(Region.of(Interval(50, 60)), 10, now=9)  # forces merges
    assert len(h.boundaries[0]) - 1 <= 3
    assert h.timestamps.max() == 9


def test_touch_only_moves_forward():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 10)), total=10, now=5)
    h.touch(3)
    assert h.last_used == 5
    h.touch(8)
    assert h.last_used == 8


def test_observe_empty_clip_is_noop():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 10)), total=10)
    before = h.total_mass
    # Region entirely outside the domain on the low side, unbounded below:
    # clipping yields an empty region.
    h.observe(Region.of(Interval(float("-inf"), -5)), 3, now=1)
    assert h.total_mass == before
    assert h.n_cells == 1


def test_estimate_count_wrong_ndim():
    from repro.errors import StatisticsError

    h = AdaptiveGridHistogram(Region.of(Interval(0, 10)), total=10)
    with pytest.raises(StatisticsError):
        h.estimate_count(Region.full(2))


def test_freshness_unhit_region_reports_oldest():
    h = AdaptiveGridHistogram(Region.of(Interval(0, 100)), total=100, now=0)
    h.observe(Region.of(Interval(0, 10)), 10, now=4)
    assert h.freshness(Region.of(Interval(0, 10))) == 4
    assert h.freshness(Region.of(Interval(50, 60))) == 0
