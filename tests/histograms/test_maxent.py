"""Iterative proportional fitting: constraint satisfaction, max entropy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StatisticsError
from repro.histograms import (
    CellConstraint,
    iterative_scaling,
    make_constraints,
    max_abs_violation,
    uniformity_deviation,
)


def test_single_constraint_exact():
    counts = np.array([10.0, 10.0, 10.0, 10.0])
    constraints = make_constraints([(np.array([0, 1]), 30.0)])
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert out[[0, 1]].sum() == pytest.approx(30.0)
    # Untouched cells keep their mass.
    assert out[2] == pytest.approx(10.0)


def test_total_plus_partial_constraints():
    counts = np.ones(4) * 25.0
    constraints = make_constraints(
        [(np.arange(4), 100.0), (np.array([0]), 50.0)]
    )
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert out.sum() == pytest.approx(100.0, rel=1e-2)
    assert out[0] == pytest.approx(50.0, rel=1e-2)
    # Remaining mass spreads uniformly (max entropy).
    assert np.allclose(out[1:], out[1], rtol=1e-6)


def test_overlapping_constraints_consistent():
    counts = np.ones(3)
    constraints = make_constraints(
        [
            (np.array([0, 1, 2]), 100.0),
            (np.array([0, 1]), 70.0),
            (np.array([1, 2]), 80.0),
        ]
    )
    out, _ = iterative_scaling(counts, constraints, max_iterations=200)
    assert max_abs_violation(out, constraints) < 0.02
    # Implies x0=20, x1=50, x2=30.
    assert out[0] == pytest.approx(20.0, abs=1.5)
    assert out[1] == pytest.approx(50.0, abs=1.5)


def test_zero_target_clears_cells():
    counts = np.array([5.0, 5.0])
    constraints = make_constraints([(np.array([0]), 0.0)])
    out, _ = iterative_scaling(counts, constraints)
    assert out[0] == 0.0
    assert out[1] == 5.0


def test_mass_created_for_zero_cells():
    counts = np.array([0.0, 0.0, 10.0])
    constraints = make_constraints([(np.array([0, 1]), 8.0)])
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert out[[0, 1]].sum() == pytest.approx(8.0)
    # Created mass is uniform (no information to prefer either cell).
    assert out[0] == pytest.approx(out[1])


def test_inconsistent_constraints_newest_wins():
    counts = np.array([10.0, 10.0])
    # Two contradictory facts about the same cells.
    constraints = make_constraints(
        [(np.array([0, 1]), 100.0), (np.array([0, 1]), 40.0)]
    )
    out, _ = iterative_scaling(counts, constraints)
    assert out.sum() == pytest.approx(40.0)  # later sequence wins each sweep


def test_no_constraints_is_identity():
    counts = np.array([1.0, 2.0])
    out, converged = iterative_scaling(counts, [])
    assert converged
    assert np.array_equal(out, counts)


def test_input_not_mutated():
    counts = np.array([1.0, 1.0])
    iterative_scaling(counts, make_constraints([(np.array([0]), 5.0)]))
    assert counts.tolist() == [1.0, 1.0]


def test_validation():
    with pytest.raises(StatisticsError):
        CellConstraint(cells=np.array([0]), target=-1.0)
    with pytest.raises(StatisticsError):
        iterative_scaling(np.ones((2, 2)), [])
    with pytest.raises(StatisticsError):
        iterative_scaling(np.array([-1.0]), [])


def test_uniformity_deviation_zero_for_uniform():
    counts = np.array([10.0, 10.0, 10.0])
    volumes = np.array([1.0, 1.0, 1.0])
    assert uniformity_deviation(counts, volumes) == pytest.approx(0.0)


def test_uniformity_deviation_accounts_for_volume():
    # Density uniform although counts differ (volume-weighted).
    counts = np.array([10.0, 20.0])
    volumes = np.array([1.0, 2.0])
    assert uniformity_deviation(counts, volumes) == pytest.approx(0.0)


def test_uniformity_deviation_positive_for_skew():
    counts = np.array([100.0, 1.0])
    volumes = np.array([1.0, 1.0])
    assert uniformity_deviation(counts, volumes) > 0.5


def test_uniformity_shape_mismatch():
    with pytest.raises(StatisticsError):
        uniformity_deviation(np.ones(2), np.ones(3))


@given(
    st.lists(st.floats(min_value=0.1, max_value=100), min_size=4, max_size=16),
    st.data(),
)
def test_ipf_property(counts_list, data):
    """Consistent disjoint constraints are satisfied and mass stays >= 0."""
    counts = np.asarray(counts_list)
    n = len(counts)
    half = n // 2
    t1 = data.draw(st.floats(min_value=0.5, max_value=500))
    t2 = data.draw(st.floats(min_value=0.5, max_value=500))
    constraints = make_constraints(
        [(np.arange(half), t1), (np.arange(half, n), t2)]
    )
    out, converged = iterative_scaling(counts, constraints)
    assert converged
    assert np.all(out >= 0)
    assert out[:half].sum() == pytest.approx(t1, rel=1e-2)
    assert out[half:].sum() == pytest.approx(t2, rel=1e-2)
