"""Self-observing plane demo: a skewed workload against ``repro serve``.

Starts an observing server in-process (``observe=True`` +
``auto_index=auto``), drives a skewed workload through the network
client — many literal variants of a few statement templates — then
dumps what the plane learned: the top statement fingerprints (one row
per *template*, p50/p95 aggregated across every literal variant), the
zone-map skip counters, and the index advisor's audit trail.

Run:  python examples/observe_demo.py
"""

import os
import sys

from repro import Engine, EngineConfig
from repro.cli import print_fingerprints
from repro.server import ReproServer, connect
from repro.workload import build_car_database

SCALE = float(os.environ.get("REPRO_SCALE", "0.002"))
N_STATEMENTS = int(os.environ.get("REPRO_STATEMENTS", "60"))


def make_observing_engine() -> Engine:
    db, _ = build_car_database(scale=SCALE, seed=42, with_indexes=False)
    config = EngineConfig.traditional()
    config.observe = True
    config.auto_index = "auto"
    config.auto_index_interval = 8
    config.parallel_threshold_rows = 256
    config.zone_map_rows = 256
    return Engine(db, config)


def main() -> None:
    server = ReproServer(make_observing_engine(), port=0).start_in_thread()
    try:
        with connect(port=server.port) as client:
            print(f"connected to observing server on port {server.port}")

            # A skewed workload: 3 templates, the first one hot. Every
            # statement uses different literals — the fingerprint
            # registry folds them into one row per template.
            for i in range(N_STATEMENTS):
                if i % 4 != 3:
                    client.execute(
                        f"SELECT COUNT(*) FROM car "
                        f"WHERE make = 'Toyota' AND year > {1995 + i % 10}"
                    )
                elif i % 8 == 3:
                    client.execute(
                        f"SELECT AVG(price) FROM car WHERE year = {2000 + i % 5}"
                    )
                else:
                    client.execute(
                        f"SELECT COUNT(*) FROM owner WHERE age < {30 + i % 40}"
                    )

            print(f"\n--- top fingerprints after {N_STATEMENTS} statements ---")
            print_fingerprints(
                client.fingerprints(limit=5, sort="executions"),
                out=sys.stdout,
            )

            stats = client.stats()
            observe = stats.get("observe", {})
            zm = observe.get("zone_maps", {})
            print("\n--- zone-map skipping ---")
            print(
                f"scans pruned: {zm.get('scans_pruned', 0)}/"
                f"{zm.get('scans_considered', 0)}, "
                f"zones skipped: {zm.get('zones_skipped', 0)}, "
                f"rows skipped: {zm.get('rows_skipped', 0)}"
            )

            advisor = observe.get("advisor", {})
            print("\n--- index advisor decisions ---")
            print(
                f"mode={advisor.get('mode')} ticks={advisor.get('ticks')} "
                f"created={advisor.get('created')} "
                f"dropped={advisor.get('dropped')}"
            )
            for entry in advisor.get("audit", []):
                print(
                    f"  tick {entry['tick']}: {entry['action']} "
                    f"{entry['index']} index on "
                    f"{entry['table']}.{entry['column']} "
                    f"(score {entry['score']}, s1 {entry['s1']}, "
                    f"s2 {entry['s2']})"
                )
            if not advisor.get("audit"):
                print("  (no decisions yet — workload too short)")
    finally:
        server.stop_from_thread()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
