"""Tuning the sensitivity threshold s_max (the paper's Figure 6, small).

Sweeps s_max over the paper's values and prints average compilation and
execution time per query. Expect: compile time collapses as s_max grows
(fewer collections), execution quality degrades near s_max = 1, and
s_max = 0 (collect everything, no sensitivity analysis) costs more total
time than a traditional optimizer — pure overhead without analysis.

Run:  python examples/sensitivity_tuning.py    (about a minute)
"""

import os

from repro.workload import (
    Setting,
    WorkloadOptions,
    build_car_database,
    format_table,
    generate_workload,
    run_setting,
)

SCALE = float(os.environ.get("REPRO_SCALE", "0.02"))
N_STATEMENTS = int(os.environ.get("REPRO_STATEMENTS", "200"))
S_MAX_VALUES = (0.0, 0.1, 0.5, 0.7, 0.9, 1.0)


def main() -> None:
    _, profile = build_car_database(scale=SCALE, seed=0)
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=N_STATEMENTS, seed=3)
    )
    rows = []
    for s_max in S_MAX_VALUES:
        print(f"running s_max = {s_max} ...")
        report = run_setting(
            Setting.JITS, workload, scale=SCALE, data_seed=0, s_max=s_max
        )
        rows.append(
            [
                s_max,
                round(report.avg_compile * 1000, 2),
                round(report.avg_execution * 1000, 2),
                round(report.avg_total * 1000, 2),
                round(report.total_modeled_cost / 1000, 0),
            ]
        )
    print()
    print(
        format_table(
            ["s_max", "avg compile ms", "avg execute ms", "avg total ms",
             "total plan kcost"],
            rows,
        )
    )
    print(
        "\nReading: s_max=0 collects everything (max compile time, no "
        "analysis);\ns_max=1 never collects (the traditional optimizer); "
        "the sweet spot sits\nin between — the paper recommends ~0.5 for "
        "single queries, ~0.7 for workloads."
    )


if __name__ == "__main__":
    main()
