"""Quickstart: build a database, run queries, turn JITS on, compare plans.

Run:  python examples/quickstart.py
"""

from repro import Engine, EngineConfig
from repro.workload import build_car_database

QUERY = """
SELECT o.name, c.price
FROM car c, owner o
WHERE c.ownerid = o.id
  AND c.make = 'Toyota' AND c.model = 'Camry'
  AND c.price > 5000
ORDER BY c.price DESC LIMIT 5
"""


def main() -> None:
    # 1. A synthetic car-insurance database (schema + correlations from the
    #    JITS paper, at 1/500 of its Table 2 row counts).
    db, _ = build_car_database(scale=0.002, seed=42)
    print("tables:", {t.name: t.row_count for t in db.tables()})

    # 2. A traditional engine: no statistics at all.
    plain = Engine(db, EngineConfig.traditional())
    result = plain.execute(QUERY)
    print("\n--- traditional optimizer, no statistics ---")
    print(result.explain())
    print(f"rows={result.row_count}  compile={result.compile_time * 1000:.2f}ms"
          f"  execute={result.execution_time * 1000:.2f}ms")

    # 3. The same database with JITS enabled: the compiler samples the
    #    tables the sensitivity analysis marks, feeds exact query-specific
    #    selectivities to the optimizer, and materializes reusable
    #    histograms in the QSS archive.
    db2, _ = build_car_database(scale=0.002, seed=42)
    jits = Engine(db2, EngineConfig.with_jits(s_max=0.5))
    result = jits.execute(QUERY)
    print("\n--- JITS enabled ---")
    print(result.explain())
    print(f"rows={result.row_count}  compile={result.compile_time * 1000:.2f}ms"
          f"  execute={result.execution_time * 1000:.2f}ms")
    report = result.jits_report
    print(f"sampled tables: {report.tables_collected}")
    print(f"groups computed: {report.collection.groups_computed}, "
          f"materialized: {report.collection.groups_materialized}")
    print(f"archive now holds {len(jits.jits.archive)} histogram(s)")

    # 4. Ordinary SQL works too: DML, aggregates, derived tables.
    jits.execute("UPDATE car SET price = price * 1.1 WHERE make = 'BMW'")
    agg = jits.execute(
        "SELECT make, COUNT(*) AS n, AVG(price) AS avg_price "
        "FROM car GROUP BY make ORDER BY n DESC LIMIT 3"
    )
    print("\ntop makes:", agg.rows)


if __name__ == "__main__":
    main()
