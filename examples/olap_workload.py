"""OLAP workload comparison: the paper's Section 4.2 experiment, small.

Runs the same mixed decision-support workload (with interleaved updates)
under the four settings of Figure 3 — no statistics, general statistics,
workload statistics, JITS — and prints the five-number summary plus the
deterministic plan-cost comparison.

Run:  python examples/olap_workload.py   (about a minute)
Tune: REPRO_SCALE / statement count below.
"""

import os

from repro.workload import (
    Setting,
    WorkloadOptions,
    build_car_database,
    generate_workload,
    run_setting,
    summarize_settings,
    ascii_box_plot,
    BoxStats,
)

SCALE = float(os.environ.get("REPRO_SCALE", "0.02"))
N_STATEMENTS = int(os.environ.get("REPRO_STATEMENTS", "300"))


def main() -> None:
    _, profile = build_car_database(scale=SCALE, seed=0)
    workload = generate_workload(
        profile, WorkloadOptions(n_statements=N_STATEMENTS, seed=3)
    )
    print(
        f"workload: {len(workload)} statements "
        f"({len(workload.selects())} queries), scale {SCALE}"
    )

    reports = {}
    for setting in Setting:
        print(f"running {setting.value} ...")
        reports[setting] = run_setting(
            setting, workload, scale=SCALE, data_seed=0
        )

    print("\nPer-query wall-clock totals (ms):")
    print(summarize_settings(reports))

    print("\nDeterministic plan cost (total, lower is better):")
    for setting, report in reports.items():
        print(f"  {setting.value:>9}: {report.total_modeled_cost / 1000:10.0f}")

    print("\nBox plot of per-query elapsed time:")
    print(
        ascii_box_plot(
            [s.value for s in reports],
            [BoxStats.of(r.select_totals()) for r in reports.values()],
        )
    )

    jits = reports[Setting.JITS]
    nostats = reports[Setting.NOSTATS]
    saving = 1 - jits.total_modeled_cost / nostats.total_modeled_cost
    print(f"\nJITS plan-cost saving vs no statistics: {saving:.0%}")


if __name__ == "__main__":
    main()
