"""Walkthrough of the paper's Figure 2 and Table 1.

Shows the two core data structures of JITS in isolation:

* the adaptive 2-D histogram and its maximum-entropy updates
  (Figure 2 a -> b -> c, with the exact numbers from the paper), and
* the StatHistory that records which statistics estimated what, how often,
  and with what errorfactor (Table 1).

Run:  python examples/histogram_feedback.py
"""

import math

from repro.histograms import AdaptiveGridHistogram, Interval, Region
from repro.jits import StatHistory

INF = math.inf


def print_grid(h: AdaptiveGridHistogram, title: str) -> None:
    print(f"\n{title}")
    a_bounds = h.boundary_list(0)
    b_bounds = h.boundary_list(1)
    print(f"  a boundaries: {[round(x, 1) for x in a_bounds]}")
    print(f"  b boundaries: {[round(x, 1) for x in b_bounds]}")
    print("  bucket counts (rows = b high->low, cols = a low->high):")
    for j in reversed(range(len(b_bounds) - 1)):
        row = [f"{h.counts[i, j]:6.1f}" for i in range(len(a_bounds) - 1)]
        b_lo, b_hi = b_bounds[j], b_bounds[j + 1]
        print(f"    b in [{b_lo:5.1f},{b_hi:5.1f}): " + " ".join(row))
    print(f"  total mass: {h.total_mass:.1f}")


def figure2() -> None:
    print("=" * 64)
    print("Figure 2: maximum-entropy histogram updates")
    print("=" * 64)
    # (a) one bucket over a in [0,50), b in [0,100); 100 tuples.
    h = AdaptiveGridHistogram(
        Region.of(Interval(0, 50), Interval(0, 100)), total=100, now=0
    )
    print_grid(h, "(a) initial: one bucket, uniformity assumed everywhere")

    # A query arrives with (a > 20 AND b > 60); sampling finds 20 matching
    # tuples, and the same sample yields the marginals: a>20 -> 70,
    # b>60 -> 30.
    h.observe(Region.of(Interval(20, 50), Interval(60, 100)), 20, total=100, now=1)
    h.observe(Region.of(Interval(20, 50), Interval(0, 100)), 70, now=1)
    h.observe(Region.of(Interval(0, 50), Interval(60, 100)), 30, now=1)
    print_grid(h, "(b) after (a>20 AND b>60)=20, a>20=70, b>60=30")
    joint = h.estimate_count(Region.of(Interval(20, 50), Interval(60, 100)))
    print(f"  -> joint region now estimates {joint:.1f} (was 24 under uniformity)")

    # (c) a later query observes a > 40 with 14 tuples; the new boundary
    # splits buckets under uniformity, then everything recalibrates.
    h.observe(Region.of(Interval(40, 50), Interval(-INF, INF)), 14, now=2)
    print_grid(h, "(c) after a>40 = 14 from a second query")
    got = h.estimate_count(Region.of(Interval(40, 50), Interval(-INF, INF)))
    print(f"  -> a>40 estimates {got:.1f}; timestamps: \n{h.timestamps.T}")


def table1() -> None:
    print()
    print("=" * 64)
    print("Table 1: the statistics-collection history")
    print("=" * 64)
    history = StatHistory()
    history.record("T1", ["a", "b", "c"], [["a", "b"], ["c"]], 0.4)
    for _ in range(5):
        history.record("T1", ["a", "b", "c"], [["a", "b"], ["c"]], 0.4)
    history.record("T1", ["a", "b", "c"], [["a"], ["b", "c"]], 0.5)
    history.record("T1", ["a", "b", "c"], [["a", "b", "c"]], 1.0)
    history.record("T1", ["a", "b", "d"], [["a", "b"], ["d"]], 0.75)
    history.record("T1", ["a", "b", "d"], [["a", "b"], ["d"]], 0.75)

    print(f"{'T':>3} {'colgrp':>12} {'statlist':>24} {'count':>6} {'ef':>6}")
    for entry in history.all_entries():
        statlist = " ".join("(" + ",".join(g) + ")" for g in entry.statlist)
        print(
            f"{entry.table:>3} {','.join(entry.colgrp):>12} {statlist:>24} "
            f"{entry.count:>6} {entry.errorfactor:>6.2f}"
        )

    print("\nAlg. 3 lookup — entries estimating (a,b,c):")
    for entry in history.entries_for_group("T1", ["a", "b", "c"]):
        print(f"  via {entry.statlist}: ef={entry.errorfactor:.2f}")
    print("Alg. 4 lookup — entries *using* the statistic (a,b):")
    for entry in history.entries_using_stat("T1", ["a", "b"]):
        print(f"  {entry.colgrp} estimated with it {entry.count}x, "
              f"ef={entry.errorfactor:.2f}")


if __name__ == "__main__":
    figure2()
    table1()
